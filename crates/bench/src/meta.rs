//! Run metadata for the machine-readable bench reports.
//!
//! Every `BENCH_*.json` artifact embeds the commit, date, toolchain and
//! core count it was produced with, so a regression flagged by
//! `scripts/bench_compare.sh` can always be traced to a concrete
//! environment. All probes degrade to `"unknown"` rather than failing —
//! a bench run must never die on a missing `git` binary.

use std::process::Command;

/// First line of a command's stdout, or `None`.
fn probe(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let line = s.lines().next()?.trim();
    (!line.is_empty()).then(|| line.to_string())
}

/// Short hash of the checked-out commit, with `+dirty` when the work
/// tree has local modifications.
pub fn git_rev() -> String {
    let Some(rev) = probe("git", &["rev-parse", "--short=12", "HEAD"]) else {
        return "unknown".into();
    };
    let dirty = probe("git", &["status", "--porcelain"]).is_some_and(|s| !s.is_empty());
    if dirty {
        format!("{rev}+dirty")
    } else {
        rev
    }
}

/// The `rustc --version` line.
pub fn rustc_version() -> String {
    probe("rustc", &["--version"]).unwrap_or_else(|| "unknown".into())
}

/// Today's UTC date as `YYYY-MM-DD`, derived from the system clock
/// without a calendar dependency (Howard Hinnant's civil-from-days).
pub fn utc_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Logical cores available to this process.
pub fn cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The shared `"meta"` JSON object (no trailing comma/newline), ready
/// to splice into a report: `{"git_rev": ..., "date": ..., "rustc":
/// ..., "cores": ...}`.
pub fn json_object() -> String {
    format!(
        "{{ \"git_rev\": \"{}\", \"date\": \"{}\", \"rustc\": \"{}\", \"cores\": {} }}",
        git_rev(),
        utc_date(),
        rustc_version(),
        cores()
    )
}

/// Peak resident set size of this process in KiB (`VmHWM` — monotone
/// over the process lifetime, so measure the low-water configuration
/// first).
pub fn peak_rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_is_iso_shaped() {
        let d = utc_date();
        assert_eq!(d.len(), 10, "{d}");
        assert_eq!(&d[4..5], "-");
        assert_eq!(&d[7..8], "-");
        assert!(d[..4].parse::<u32>().unwrap() >= 2024);
    }

    #[test]
    fn meta_object_is_populated() {
        let j = json_object();
        assert!(j.contains("\"git_rev\""));
        assert!(j.contains("\"cores\""));
        assert!(!j.contains("\"\""), "empty field in {j}");
    }

    #[test]
    fn rss_probe_reads_something() {
        assert!(peak_rss_kib() > 0);
    }
}
