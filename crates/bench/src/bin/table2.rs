//! Table 2 regenerator: browser and system configurations of the testbed.

use bnm_bench::cli::BenchArgs;
use bnm_bench::heading;
use bnm_methods::table2_rows;

fn main() {
    let args = BenchArgs::parse();
    heading("Table 2: Configurations of the browsers and systems used in the experiments");
    println!(
        "{:<12} {:<10} {:<9} {:<10} {:<6} WebSocket",
        "OS", "Browser", "Version", "Flash", "Java"
    );
    println!("{}", "-".repeat(62));
    let mut csv = String::from("os,browser,version,flash,java,websocket\n");
    let mut last_os = String::new();
    for row in table2_rows() {
        let os_cell = if row.os.name() == last_os {
            "".to_string()
        } else {
            last_os = row.os.name().to_string();
            row.os.name().to_string()
        };
        println!(
            "{:<12} {:<10} {:<9} {:<10} {:<6} {}",
            os_cell,
            row.browser.name(),
            row.version,
            row.flash,
            row.java,
            if row.websocket { "yes" } else { "no" }
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            row.os.name(),
            row.browser.name(),
            row.version,
            row.flash,
            row.java,
            row.websocket
        ));
    }
    let path = args.save_artifact("table2.csv", &csv);
    println!("\nArtifact written to {}", path.display());
}
