//! Extension experiment: server-delay sweep (§3's remark on handshake
//! inflation scaling with the network delay).
//!
//! Sweeps the netem delay from 10 to 200 ms and prints the Δd medians and
//! fitted slopes: reuse methods are flat, handshake-including methods
//! have slope ≈ 1 (they absorb one extra RTT per RTT).

use bnm_bench::cli::BenchArgs;
use bnm_bench::heading;
use bnm_browser::BrowserKind;
use bnm_core::sweep::{d1_slope, d2_slope, try_sweep};
use bnm_core::{ExperimentCell, RuntimeSel};
use bnm_methods::MethodId;
use bnm_sim::time::SimDuration;
use bnm_time::OsKind;

fn main() {
    let args = BenchArgs::parse();
    let n = args.reps.min(15);
    let seed = args.seed;
    heading("Extension: Δd vs server delay — who absorbs extra RTTs?");

    let delays: Vec<SimDuration> = [10u64, 25, 50, 100, 200]
        .into_iter()
        .map(SimDuration::from_millis)
        .collect();
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8}   slopes(Δd1, Δd2)",
        "method / runtime", "10ms", "25ms", "50ms", "100ms", "200ms"
    );
    let mut csv = String::from("method,runtime,delay_ms,d1_median,d2_median\n");
    for (method, browser, os) in [
        (MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204),
        (MethodId::WebSocket, BrowserKind::Chrome, OsKind::Ubuntu1204),
        (MethodId::FlashGet, BrowserKind::Chrome, OsKind::Windows7),
        (MethodId::FlashGet, BrowserKind::Opera, OsKind::Windows7),
        (MethodId::FlashPost, BrowserKind::Opera, OsKind::Windows7),
    ] {
        let cell = ExperimentCell::paper(method, RuntimeSel::Browser(browser), os)
            .with_reps(n)
            .with_seed(seed);
        let label = format!("{} / {}", method.display_name(), browser.initial());
        let pts = match try_sweep(&cell, &delays) {
            Ok(pts) => pts,
            Err(e) => {
                eprintln!("skipping {label}: {e}");
                continue;
            }
        };
        let d1s: Vec<String> = pts.iter().map(|p| format!("{:8.1}", p.d1_median)).collect();
        println!(
            "{label:<28} {}   ({:+.2}, {:+.2})  [Δd1]",
            d1s.join(" "),
            d1_slope(&pts).expect("five sweep points"),
            d2_slope(&pts).expect("five sweep points")
        );
        for p in &pts {
            csv.push_str(&format!(
                "{},{},{},{:.3},{:.3}\n",
                method.label(),
                browser.initial(),
                p.delay_ms,
                p.d1_median,
                p.d2_median
            ));
        }
    }
    println!(
        "\nReading: slope ≈ 0 — the overhead is client-side and calibratable regardless of\n\
         path length; slope ≈ +1 (Opera Flash Δd1, Flash POST Δd2) — the \"overhead\" is a\n\
         hidden handshake, growing with every ms of network delay (§3/§4.1)."
    );
    let path = args.save_artifact("sweep.csv", &csv);
    println!("Artifact written to {}", path.display());
}
