//! Extension experiment: WebRTC data channel vs WebSocket under loss.
//!
//! Sweeps a symmetric loss rate from 0 to 5% and compares the two
//! socket-era in-browser transports side by side:
//!
//! * **WebSocket** (reliable): a lost probe is retransmitted by TCP, so
//!   the round is *excluded* per the paper's §3.2 rule and the Δd
//!   medians estimate only the clean rounds.
//! * **WebRTC data channel** (unreliable datagram): a lost probe is a
//!   *measurement* — the per-probe matcher attributes it to a
//!   direction, and the delivered probes still yield per-probe OWD and
//!   RFC 3550 jitter alongside Δd.
//!
//! The table shows the complementary behaviours: the WebSocket row's
//! `excluded_rounds` grows with the injected rate while its medians
//! barely move, and the WebRTC row's `loss_pct_meas` tracks the
//! injected `loss_pct` while its delivered-probe medians stay put.

use bnm_bench::cli::BenchArgs;
use bnm_bench::heading;
use bnm_browser::BrowserKind;
use bnm_core::report::{DistSummary, Render, Table, Value};
use bnm_core::{ExperimentCell, ExperimentRunner, Impairment, RuntimeSel};
use bnm_methods::MethodId;
use bnm_time::OsKind;

fn main() {
    let args = BenchArgs::parse();
    let n = args.reps.min(20);
    heading("Extension: WebRTC datagrams vs WebSocket — loss as a measurement vs an exclusion");

    let methods = [MethodId::WebRtc, MethodId::WebSocket];
    let loss_pcts = [0.0f64, 0.5, 1.0, 2.0, 5.0];

    let med = |v: &[f64]| DistSummary::of_samples(v).p50;
    let blank = || Value::Text(String::new());
    let mut table = Table::new(
        format!(
            "WebRTC vs WebSocket under loss ({n} reps, seed {:#x})",
            args.seed
        ),
        &[
            "method",
            "loss_pct",
            "d1_median_ms",
            "d2_median_ms",
            "excluded_rounds",
            "failures",
            "probes_sent",
            "probes_delivered",
            "loss_pct_meas",
            "owd_up_p50_ms",
            "owd_down_p50_ms",
            "wire_jitter_p50_ms",
        ],
    );
    for method in methods {
        for pct in loss_pcts {
            let cell = ExperimentCell::builder(
                method,
                RuntimeSel::Browser(BrowserKind::Chrome),
                OsKind::Ubuntu1204,
            )
            .reps(n)
            .seed(args.seed)
            .impairment(Impairment::loss(pct / 100.0))
            .build()
            .expect("sweep cells are runnable");
            let r = match ExperimentRunner::try_run(&cell) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("skipping {} @ {pct}%: {e}", method.label());
                    continue;
                }
            };
            let mut row = vec![
                Value::Text(method.label().to_string()),
                Value::Num(pct),
                Value::Num(med(&r.d1)),
                Value::Num(med(&r.d2)),
                Value::Int(r.excluded_rounds as i64),
                Value::Int(r.failures as i64),
            ];
            match r.sessions.iter().find_map(|s| s.datagram.as_ref()) {
                Some(d) => {
                    row.push(Value::Int(d.sent as i64));
                    row.push(Value::Int(d.delivered as i64));
                    row.push(Value::Num(d.loss_rate() * 100.0));
                    row.push(Value::Num(DistSummary::of_samples(&d.owd_up_ms).p50));
                    row.push(Value::Num(DistSummary::of_samples(&d.owd_down_ms).p50));
                    row.push(Value::Num(DistSummary::of_samples(&d.wire_jitter_ms).p50));
                }
                None => row.extend([blank(), blank(), blank(), blank(), blank(), blank()]),
            }
            table.row(row);
        }
    }
    table.note(
        "Reading: both transports keep their Δd medians flat across the sweep, but for \
         opposite reasons. WebSocket hides loss behind TCP retransmission, so affected \
         rounds are excluded (excluded_rounds grows with the rate) and the estimator never \
         sees them. WebRTC's unreliable channel surfaces loss directly: loss_pct_meas \
         tracks the injected loss_pct, the delivered probes keep their one-way delays, and \
         nothing needs excluding.",
    );
    println!("{}", table.render(args.format.report_format()));
    let path = args.save_artifact("webrtc.csv", &table.to_csv());
    println!("Artifact written to {}", path.display());
}
