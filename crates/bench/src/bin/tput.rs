//! Extension experiment: throughput-measurement accuracy (§2.2 and the
//! "Tput" column of Table 1).
//!
//! For each method that speedtest tools download through, and for several
//! object sizes, compare the browser-level throughput estimate against
//! the wire-level truth. Also prints the ICMP ping baseline (§6, the
//! Yeboah et al. comparison).

use bnm_bench::cli::BenchArgs;
use bnm_bench::heading;
use bnm_browser::BrowserKind;
use bnm_core::baseline::ping_baseline;
use bnm_core::throughput::run_bulk_rep;
use bnm_core::{ExperimentCell, RuntimeSel};
use bnm_methods::MethodId;
use bnm_stats::Summary;
use bnm_time::OsKind;

fn main() {
    let args = BenchArgs::parse();
    let n_reps = args.reps.min(10); // bulk repetitions are heavier
    let seed = args.seed;

    heading("Extension: ICMP ping baseline (§6)");
    let pings = ping_baseline(10, bnm_sim::time::SimDuration::from_millis(50), seed);
    let s = Summary::of(&pings);
    println!(
        "ping RTT over the testbed: median {:.3} ms (min {:.3}, max {:.3}) — the ground truth\n\
         browser methods are judged against.",
        s.median, s.min, s.max
    );

    heading("Extension: throughput-estimate accuracy by method and size");
    println!(
        "{:<22} {:>9} {:>12} {:>12} {:>10}",
        "method", "size", "wire Mbps", "meas Mbps", "underest"
    );
    let mut csv =
        String::from("method,browser,size_bytes,round,wire_mbps,browser_mbps,underestimation\n");
    for method in [
        MethodId::XhrGet,
        MethodId::FlashGet,
        MethodId::JavaGet,
        MethodId::WebSocket,
    ] {
        for size in [16 * 1024usize, 128 * 1024, 1024 * 1024] {
            let cell = ExperimentCell::paper(
                method,
                RuntimeSel::Browser(BrowserKind::Chrome),
                OsKind::Ubuntu1204,
            )
            .with_seed(seed);
            let mut wire = Vec::new();
            let mut meas = Vec::new();
            for rep in 0..n_reps {
                let Ok(ms) = run_bulk_rep(&cell, rep, size) else {
                    continue;
                };
                for m in &ms {
                    // Round 2 is the reuse round speedtests resemble.
                    if m.round == 2 {
                        wire.push(m.wire_bps() / 1e6);
                        meas.push(m.browser_bps() / 1e6);
                    }
                    csv.push_str(&format!(
                        "{},{},{},{},{:.4},{:.4},{:.4}\n",
                        method.label(),
                        "C (U)",
                        size,
                        m.round,
                        m.wire_bps() / 1e6,
                        m.browser_bps() / 1e6,
                        m.underestimation()
                    ));
                }
            }
            if wire.is_empty() {
                continue;
            }
            let w = Summary::of(&wire).median;
            let b = Summary::of(&meas).median;
            println!(
                "{:<22} {:>6} KB {:>12.2} {:>12.2} {:>9.1}%",
                method.display_name(),
                size / 1024,
                w,
                b,
                (1.0 - b / w) * 100.0
            );
        }
    }
    println!(
        "\nReading: the overhead is a fixed per-transfer tax, so it dominates small\n\
         transfers and dilutes on large ones — and Flash taxes every size hardest (§2.2)."
    );
    let path = args.save_artifact("tput.csv", &csv);
    println!("Artifact written to {}", path.display());
}
