//! Table 4 regenerator: Java applet methods on Windows with
//! `System.nanoTime()` — mean Δd ± 95% CI.
//!
//! The §4.2 fix: replacing `Date.getTime()` removes the under-estimation
//! entirely; the socket method becomes comparable to tcpdump/WinDump.

use bnm_bench::cli::BenchArgs;
use bnm_bench::{heading, run_cells};
use bnm_browser::BrowserKind;
use bnm_core::{ExperimentCell, RuntimeSel};
use bnm_methods::MethodId;
use bnm_stats::MeanCi;
use bnm_time::{OsKind, TimingApiKind};

fn main() {
    let args = BenchArgs::parse();
    let (seed, n) = (args.seed, args.reps);
    heading(
        "Table 4: Delay overheads of the Java applet methods on Windows with System.nanoTime() \
         (mean ± 95% CI, ms)",
    );

    let mut cells = Vec::new();
    for method in MethodId::JAVA {
        for browser in BrowserKind::ALL {
            cells.push(
                ExperimentCell::paper(method, RuntimeSel::Browser(browser), OsKind::Windows7)
                    .with_reps(n)
                    .with_seed(seed ^ (method as u64) << 8)
                    .with_timing(TimingApiKind::JavaNanoTime)
                    // §5: Table 4's Safari numbers come from the fixed
                    // (Oracle-JRE) Java interface.
                    .with_fixed_safari_java(),
            );
        }
    }
    let results = run_cells(cells);

    println!(
        "{:<9} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13}",
        "", "GET Δd1", "GET Δd2", "POST Δd1", "POST Δd2", "Socket Δd1", "Socket Δd2"
    );
    let mut csv = String::from("browser,method,round,mean_ms,ci_ms\n");
    for browser in BrowserKind::ALL {
        let mut row = format!("{:<9}", browser.name());
        for method in MethodId::JAVA {
            let (_, r) = results
                .iter()
                .find(|(c, _)| c.method == method && c.runtime == RuntimeSel::Browser(browser))
                .unwrap();
            for (round, data) in [(1u8, &r.d1), (2u8, &r.d2)] {
                let ci = MeanCi::of(data);
                row.push_str(&format!(" {:>13}", ci.format_table4()));
                csv.push_str(&format!(
                    "{},{},{},{:.4},{:.4}\n",
                    browser.name(),
                    method.label(),
                    round,
                    ci.mean,
                    ci.half_width
                ));
            }
        }
        println!("{row}");
    }
    println!(
        "\nReading: no negative means anywhere; socket overheads ≲ 0.2 ms — comparable to the\n\
         capture tool itself, as §4.2 concludes."
    );
    let path = args.save_artifact("table4.csv", &csv);
    println!("Artifact written to {}", path.display());
}
