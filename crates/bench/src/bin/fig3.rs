//! Figure 3 regenerator: box plots of Δd1/Δd2 for the ten methods across
//! the eight browser-OS combinations (panels (a)–(j)).

use bnm_bench::cli::BenchArgs;
use bnm_bench::{heading, run_cells};
use bnm_core::config::figure3_combos;
use bnm_core::report::{panel_rows, render_panel, to_csv};
use bnm_core::ExperimentCell;
use bnm_methods::MethodId;

fn main() {
    let args = BenchArgs::parse();
    let (seed, n) = (args.seed, args.reps);
    println!("Figure 3 — delay overheads by method ({n} reps/cell, seed {seed:#x})");

    let mut csv_all = String::new();
    for method in MethodId::FIGURE3 {
        let panel = method.figure3_panel().unwrap();
        heading(&format!("({panel}) {}", method.display_name()));
        let cells: Vec<ExperimentCell> = figure3_combos()
            .into_iter()
            .map(|(rt, os)| {
                ExperimentCell::paper(method, rt, os)
                    .with_reps(n)
                    .with_seed(seed ^ (method as u64) << 8)
            })
            .filter(ExperimentCell::is_runnable)
            .collect();
        // The executor keeps input order, so the panel already reads in
        // the paper's x-axis order (Ubuntu block then Windows block).
        let results = run_cells(cells);
        let mut rows = Vec::new();
        for (cell, result) in &results {
            rows.extend(panel_rows(cell, result));
            csv_all.push_str(&to_csv(cell, result));
        }
        print!(
            "{}",
            render_panel(&format!("Δd (ms), {} reps", n), &rows, 58)
        );
    }
    let path = args.save_artifact("fig3_deltas.csv", &csv_all);
    println!("\nArtifact written to {}", path.display());
}
