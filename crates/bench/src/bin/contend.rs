//! Extension experiment: Δd vs concurrent measuring clients — what does
//! contention on the shared server link do to each method's overhead?
//!
//! Sweeps the client count from 1 to 64 at a fixed narrowed link, every
//! client running the same method concurrently against one web server
//! whose access link is the shared bottleneck — then pushes on into the
//! crowd regime (128 to 1,000 clients) with the link scaled to a
//! constant per-client share. Per Eq. 1, queueing
//! *between* `tN_s` and `tN_r` cancels out of Δd — so methods that reuse
//! their measurement connection (XHR steady-state, WebSocket) should
//! stay tight at any client count, while methods that open a **fresh TCP
//! connection inside a timed round** (Opera's Flash GET in round 1,
//! Flash POST in every round) absorb a handshake that queues behind the
//! other clients' traffic: their Δd medians grow with the crowd.

use bnm_bench::cli::BenchArgs;
use bnm_bench::heading;
use bnm_browser::BrowserKind;
use bnm_core::config::{ContentionSpec, StreamingSpec};
use bnm_core::report::{DistSummary, Render, Table, Value};
use bnm_core::{CellResult, Executor, ExperimentCell, RunError, RuntimeSel};
use bnm_methods::MethodId;
use bnm_time::OsKind;

/// The narrowed server access link, bits/s (overridable through
/// `BNM_CONTEND_RATE_MBPS`). 100 Mbps never queues long enough to see;
/// narrowed, the concurrent sessions' page/asset/probe responses share
/// the line and in-round handshakes have to wait their turn.
fn rate_bps() -> u64 {
    std::env::var("BNM_CONTEND_RATE_MBPS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|mbps| (mbps * 1e6) as u64)
        .unwrap_or(400_000)
}

fn median(v: &[f64]) -> f64 {
    DistSummary::of_samples(v).p50
}

/// One tier end to end, returning the result plus the frame pool's
/// per-tier counters (live-buffer high-water mark and fresh
/// allocations) so the CSV records the capture footprint alongside the
/// Δd numbers.
fn run_tier(cell: &ExperimentCell) -> Result<(CellResult, bytes::pool::PoolStats), RunError> {
    let (mut results, stats) = Executor::new().run_with_stats(std::slice::from_ref(cell), |_| {});
    let r = results.pop().expect("one result per cell")?;
    Ok((r, stats.pool))
}

/// Run one (method, clients, rate) tier and append its row.
#[allow(clippy::too_many_arguments)] // a sweep point is genuinely this wide
fn tier_row(
    table: &mut Table,
    method: MethodId,
    browser: BrowserKind,
    os: OsKind,
    clients: u32,
    rate: u64,
    reps: u32,
    seed: u64,
    streaming: Option<StreamingSpec>,
) {
    let label = format!("{} / {}", method.display_name(), browser.initial());
    let mut builder = ExperimentCell::builder(method, RuntimeSel::Browser(browser), os)
        .reps(reps)
        .seed(seed)
        .contention(ContentionSpec::clients(clients).with_server_link_rate(rate));
    if let Some(s) = streaming {
        builder = builder.streaming(s);
    }
    let cell = builder.build().expect("sweep cells are runnable");
    let (r, pool) = match run_tier(&cell) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("skipping {label} @ {clients} clients: {e}");
            return;
        }
    };
    // Pool every session's samples: each of the N clients is a
    // measuring client, and the paper's question — "what does the
    // browser add on top of the wire RTT?" — applies to each.
    let d1: Vec<f64> = r.sessions.iter().flat_map(|s| s.d1.clone()).collect();
    let d2: Vec<f64> = r.sessions.iter().flat_map(|s| s.d2.clone()).collect();
    table.row(vec![
        Value::Text(method.label().to_string()),
        Value::Text(browser.initial().to_string()),
        Value::Int(clients as i64),
        Value::Int(rate as i64),
        Value::Num(median(&d1)),
        Value::Num(median(&d2)),
        Value::Int(d1.len() as i64),
        Value::Int(d2.len() as i64),
        Value::Int(r.excluded_rounds as i64),
        Value::Int(r.failures as i64),
        Value::Int(pool.live_peak),
        Value::Int(pool.allocated as i64),
    ]);
}

fn main() {
    let args = BenchArgs::parse();
    let n = args.reps.min(10);
    let rate = rate_bps();
    heading("Extension: Δd vs concurrent clients — contention on the shared server link");

    // Two fresh-connection methods (Opera Flash: GET handshakes in round
    // 1, POST in every round) against two connection-reusing controls.
    let methods = [
        (MethodId::FlashGet, BrowserKind::Opera, OsKind::Windows7),
        (MethodId::FlashPost, BrowserKind::Opera, OsKind::Windows7),
        (MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204),
        (MethodId::WebSocket, BrowserKind::Chrome, OsKind::Ubuntu1204),
    ];
    let counts = [1u32, 2, 4, 8, 16, 32, 64];

    let mut table = Table::new(
        format!(
            "Δd vs concurrent clients ({n} reps, seed {:#x}, legacy link {rate} bps)",
            args.seed
        ),
        &[
            "method",
            "runtime",
            "clients",
            "rate_bps",
            "d1_median_ms",
            "d2_median_ms",
            "d1_n",
            "d2_n",
            "excluded_rounds",
            "failures",
            "pool_live_peak",
            "pool_allocated",
        ],
    );
    for (method, browser, os) in methods {
        for c in counts {
            tier_row(&mut table, method, browser, os, c, rate, n, args.seed, None);
        }
    }

    // ---- Crowd regime: 128 .. 1,000 clients -------------------------
    //
    // At these scales a fixed link would starve every session, so the
    // shared link grows with the crowd instead: each client keeps the
    // same per-client share it had at the legacy sweep's 64-client
    // endpoint (rate/64, 6,250 bps under the default 0.4 Mbps). What is
    // held constant is therefore *fairness*, and what the sweep shows is
    // pure crowd-size effect: whether a method's Δd degrades simply
    // because 1,000 handshakes and probes interleave on one line.
    //
    // Crowd tiers run the streaming pipeline with bounded retention:
    // frames recycle at capture time instead of accumulating a tier's
    // whole capture, and the per-session samples spill to sketches past
    // 64 raw values (at crowd reps <= 2 every raw sample is retained,
    // so the medians are exactly the batch pipeline's — asserted
    // bit-for-bit by tests/streaming_parity.rs).
    let per_client = (rate / 64).max(1);
    let crowd_reps = n.min(2);
    let crowd_counts = [128u32, 256, 512, 1000];
    for (method, browser, os) in [
        (MethodId::WebSocket, BrowserKind::Chrome, OsKind::Ubuntu1204),
        (MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204),
    ] {
        for c in crowd_counts {
            tier_row(
                &mut table,
                method,
                browser,
                os,
                c,
                per_client * u64::from(c),
                crowd_reps,
                args.seed,
                Some(StreamingSpec::bounded(64)),
            );
        }
    }

    table.note(
        "Reading: the Flash methods' Δd medians (Δd1 for GET, both rounds for POST) \
         climb with the client count — their in-round TCP handshakes queue behind the \
         other sessions' traffic on the narrowed shared server link, and that wait sits \
         *before* tN_s, inside the browser-timed interval. The reused-connection \
         methods barely move: for them the crowd's queueing falls between tN_s and \
         tN_r, which Eq. 1 subtracts away.",
    );
    table.note(
        "Crowd tiers (128+) hold the per-client link share constant at the 64-client \
         endpoint's, so they show pure crowd-size effect under the streaming pipeline \
         with bounded retention.",
    );
    println!("{}", table.render(args.format.report_format()));
    let path = args.save_artifact("contend.csv", &table.to_csv());
    println!("Artifact written to {}", path.display());
}
