//! Figure 4 regenerator: CDFs of Δd1/Δd2 for the Java applet TCP socket
//! method on Windows — (a) in the five browsers, (b) under
//! `appletviewer` (no browser, no Java Plug-in).
//!
//! The §4.2 claims this verifies: discrete Δd levels ~16 ms apart caused
//! by the system-timer granularity; the same levels *without* any browser
//! (exonerating browsers and plug-ins); Safari's Δd2 smeared continuously
//! by its broken default Java interface.

use bnm_bench::cli::BenchArgs;
use bnm_bench::{heading, run_cells};
use bnm_browser::BrowserKind;
use bnm_core::appraisal::Appraisal;
use bnm_core::report::render_cdf_block;
use bnm_core::{ExperimentCell, RuntimeSel};
use bnm_methods::MethodId;
use bnm_stats::Cdf;
use bnm_time::OsKind;

fn main() {
    let args = BenchArgs::parse();
    let (seed, n) = (args.seed, args.reps);

    let mut cells: Vec<ExperimentCell> = BrowserKind::ALL
        .iter()
        .map(|&b| {
            ExperimentCell::paper(MethodId::JavaTcp, RuntimeSel::Browser(b), OsKind::Windows7)
                .with_reps(n)
                .with_seed(seed)
        })
        .collect();
    // The appletviewer control runs in its own session (a different
    // afternoon on the machine's regime timeline): derive its seed so the
    // run straddles the coarse regime like the paper's Figure 4(b).
    cells.push(
        ExperimentCell::paper(
            MethodId::JavaTcp,
            RuntimeSel::AppletViewer,
            OsKind::Windows7,
        )
        .with_reps(n)
        .with_seed(seed ^ 0x0A12),
    );
    let results = run_cells(cells);

    let mut csv = String::from("runtime,round,delta_ms\n");
    heading("Figure 4(a): CDFs of Δd1/Δd2, Java applet TCP socket, launched in browsers (Windows)");
    for &b in &BrowserKind::ALL {
        let (cell, result) = results
            .iter()
            .find(|(c, _)| c.runtime == RuntimeSel::Browser(b))
            .unwrap();
        let (c1, c2) = Appraisal::cdfs(result);
        print_levels(&format!("{} Δd1", b.initial()), &c1);
        print_levels(&format!("{} Δd2", b.initial()), &c2);
        for (round, data) in [(1u8, &result.d1), (2u8, &result.d2)] {
            for d in data {
                csv.push_str(&format!(
                    "{},{},{:.4}\n",
                    cell.runtime.figure_label(cell.os),
                    round,
                    d
                ));
            }
        }
    }
    // One full CDF plot for the most story-telling browser (Firefox).
    let (_, ff) = results
        .iter()
        .find(|(c, _)| c.runtime == RuntimeSel::Browser(BrowserKind::Firefox))
        .unwrap();
    println!();
    print!(
        "{}",
        render_cdf_block("Firefox Δd1 CDF (Windows)", &Cdf::of(&ff.d1), 58, 10)
    );

    heading("Figure 4(b): the same, launched with appletviewer (no browser)");
    let (cell_av, av) = results
        .iter()
        .find(|(c, _)| c.runtime == RuntimeSel::AppletViewer)
        .unwrap();
    let (a1, a2) = Appraisal::cdfs(av);
    print_levels("appletviewer Δd1", &a1);
    print_levels("appletviewer Δd2", &a2);
    print!("{}", render_cdf_block("appletviewer Δd1 CDF", &a1, 58, 10));
    for (round, data) in [(1u8, &av.d1), (2u8, &av.d2)] {
        for d in data {
            csv.push_str(&format!(
                "{},{},{:.4}\n",
                cell_av.runtime.figure_label(cell_av.os),
                round,
                d
            ));
        }
    }
    println!(
        "\nReading: discrete levels ~15.6 ms apart appear with and without a browser —\n\
         the granularity of Date.getTime()/currentTimeMillis() on Windows is the cause (§4.2)."
    );
    let path = args.save_artifact("fig4_cdfs.csv", &csv);
    println!("Artifact written to {}", path.display());
}

/// Print the discrete levels of a Δd sample (center, mass).
fn print_levels(label: &str, cdf: &Cdf) {
    let levels = cdf.levels(3.0);
    let cells: Vec<String> = levels
        .iter()
        .map(|(c, m)| format!("{c:7.2} ms ({:4.0}%)", m * 100.0))
        .collect();
    println!("{label:<18} levels: {}", cells.join("  "));
}
