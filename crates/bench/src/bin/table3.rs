//! Table 3 regenerator: median Δd1/Δd2 for the Flash HTTP methods in
//! Opera — the TCP-handshake-inclusion finding (§4.1).

use bnm_bench::cli::BenchArgs;
use bnm_bench::{fmt_med, heading, run_cells};
use bnm_browser::BrowserKind;
use bnm_core::{ExperimentCell, RuntimeSel};
use bnm_methods::MethodId;
use bnm_stats::Summary;
use bnm_time::OsKind;

fn main() {
    let args = BenchArgs::parse();
    let (seed, n) = (args.seed, args.reps);
    heading("Table 3: Median Δd1 and Δd2 for the Flash HTTP methods in Opera (ms)");

    let mut cells = Vec::new();
    for method in [MethodId::FlashGet, MethodId::FlashPost] {
        for os in [OsKind::Windows7, OsKind::Ubuntu1204] {
            cells.push(
                ExperimentCell::paper(method, RuntimeSel::Browser(BrowserKind::Opera), os)
                    .with_reps(n)
                    .with_seed(seed ^ (method as u64) << 8),
            );
        }
    }
    let results = run_cells(cells);
    let median = |v: &[f64]| Summary::of(v).median;
    let get = |m: MethodId, os: OsKind, round: u8| -> f64 {
        let (_, r) = results
            .iter()
            .find(|(c, _)| c.method == m && c.os == os)
            .unwrap();
        median(r.round(round).expect("rounds 1 and 2"))
    };

    println!("{:<12} {:>10} {:>10}", "", "O(W)", "O(U)");
    let mut csv = String::from("method,round,ow_ms,ou_ms\n");
    for (method, name) in [(MethodId::FlashGet, "GET"), (MethodId::FlashPost, "POST")] {
        for round in [1u8, 2] {
            let w = get(method, OsKind::Windows7, round);
            let u = get(method, OsKind::Ubuntu1204, round);
            println!("{name:<5} Δd{round}   {} {}", fmt_med(w), fmt_med(u));
            csv.push_str(&format!("{name},{round},{w:.2},{u:.2}\n"));
        }
    }

    // The §4.1 check: POST Δd2 − 50 ms (the simulated delay) ≈ GET Δd2.
    let post_d2 = get(MethodId::FlashPost, OsKind::Windows7, 2);
    let get_d2 = get(MethodId::FlashGet, OsKind::Windows7, 2);
    println!(
        "\n§4.1 check (O(W)): POST Δd2 − 50 = {:.1} vs GET Δd2 = {:.1}  (handshake ≈ simulated delay)",
        post_d2 - 50.0,
        get_d2
    );
    let path = args.save_artifact("table3.csv", &csv);
    println!("Artifact written to {}", path.display());
}
