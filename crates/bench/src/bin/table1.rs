//! Table 1 regenerator: the taxonomy of browser-based measurement
//! methods and the tools using them.

use bnm_bench::cli::BenchArgs;
use bnm_bench::heading;
use bnm_methods::table1_rows;

fn main() {
    let args = BenchArgs::parse();
    heading("Table 1: A summary of the browser-based network measurement methods and tools");
    println!(
        "{:<13} {:<12} {:<13} {:<10} {:<12} {:<16} Tools / Services",
        "Approach", "Technology", "Availability", "Method", "Same-origin", "Metrics"
    );
    println!("{}", "-".repeat(120));
    let mut csv =
        String::from("approach,technology,availability,method,same_origin,metrics,tools\n");
    let mut last_approach = "";
    for row in table1_rows() {
        let approach = if row.approach == last_approach {
            ""
        } else {
            last_approach = row.approach;
            row.approach
        };
        println!(
            "{:<13} {:<12} {:<13} {:<10} {:<12} {:<16} {}",
            approach,
            row.technology,
            row.availability,
            row.method,
            row.same_origin,
            row.metrics,
            row.tools
        );
        csv.push_str(&format!(
            "{},{},{},{},{},\"{}\",\"{}\"\n",
            row.approach,
            row.technology,
            row.availability,
            row.method,
            row.same_origin,
            row.metrics,
            row.tools
        ));
    }
    println!("\nNote: \"Yes*\" — the same-origin policy can be bypassed.");
    let path = args.save_artifact("table1.csv", &csv);
    println!("Artifact written to {}", path.display());
}
