//! Figure 5 regenerator: the timestamp-granularity probe.
//!
//! The paper's Java loop busy-waits on `Date.getTime()` until the value
//! changes and prints the difference. Here the same loop runs against the
//! modelled timing APIs over hours of virtual time, showing the Windows
//! granularity flipping between 1 ms and ~15.6 ms with multi-minute
//! dwell times — and `System.nanoTime()` immune to all of it.

use bnm_bench::cli::BenchArgs;
use bnm_bench::heading;
use bnm_sim::time::{SimDuration, SimTime};
use bnm_time::{
    make_api, probe::probe_series, probe_granularity, MachineTimer, OsKind, TimingApiKind,
};

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed;
    heading("Figure 5: timestamp-granularity probe (busy-wait until the clock ticks)");

    let machine_w = MachineTimer::new(OsKind::Windows7, seed);
    let machine_u = MachineTimer::new(OsKind::Ubuntu1204, seed);

    println!("\nSingle probes (like running the paper's code once):");
    for (name, os, machine) in [
        ("Windows 7", OsKind::Windows7, &machine_w),
        ("Ubuntu 12.04", OsKind::Ubuntu1204, &machine_u),
    ] {
        let _ = os;
        let mut api = make_api(TimingApiKind::JavaDateGetTime, machine);
        let p = probe_granularity(api.as_mut(), SimTime::from_secs(1), 10_000_000).unwrap();
        println!(
            "  Java Date.getTime on {name:<13}: {} ms  ({} calls, {})",
            p.observed_ms, p.calls, p.elapsed
        );
    }
    let mut nano = make_api(TimingApiKind::JavaNanoTime, &machine_w);
    let p = probe_granularity(nano.as_mut(), SimTime::from_secs(1), 10_000).unwrap();
    println!(
        "  Java System.nanoTime on Windows 7 : {:.6} ms ({} calls)",
        p.observed_ms, p.calls
    );

    println!("\nProbe series on Windows (one probe per simulated minute, 3 hours):");
    let mut api = make_api(TimingApiKind::JavaDateGetTime, &machine_w);
    let series = probe_series(api.as_mut(), SimTime::ZERO, SimDuration::from_secs(60), 180);
    let mut csv = String::from("minute,observed_ms\n");
    let mut line = String::new();
    for (i, (_, g)) in series.iter().enumerate() {
        line.push(if *g > 2.0 { 'C' } else { '.' });
        csv.push_str(&format!("{},{:.3}\n", i, g));
        if (i + 1) % 60 == 0 {
            println!("  hour {}: {line}", i / 60 + 1);
            line.clear();
        }
    }
    println!("  legend: '.' = 1 ms regime, 'C' = ~15.6 ms regime");
    let coarse = series.iter().filter(|(_, g)| *g > 2.0).count();
    println!(
        "\n  {} of {} probes saw the coarse (~15.6 ms) granularity; regimes persist for minutes.",
        coarse,
        series.len()
    );
    let path = args.save_artifact("fig5_granularity.csv", &csv);
    println!("Artifact written to {}", path.display());
}
