//! Extension experiment: Δd vs packet loss — how well does the paper's
//! retransmission-exclusion rule protect the delay estimates?
//!
//! Sweeps a symmetric loss rate from 0 to 5% and reports, per method,
//! the Δd medians over the *included* rounds plus how many rounds the
//! exclusion rule discarded. The clean medians should survive the
//! sweep essentially unchanged: a lost probe costs a whole RTO
//! (~200 ms), so a single leaked retransmission would be obvious in
//! the medians.

use bnm_bench::cli::BenchArgs;
use bnm_bench::heading;
use bnm_browser::BrowserKind;
use bnm_core::report::{DistSummary, Render, Table, Value};
use bnm_core::{ExperimentCell, ExperimentRunner, Impairment, RuntimeSel};
use bnm_methods::MethodId;
use bnm_time::OsKind;

fn main() {
    let args = BenchArgs::parse();
    let n = args.reps.min(20);
    heading("Extension: Δd vs loss — the §3 retransmission-exclusion rule at work");

    // The three socket methods (echo transports, where a retransmitted
    // probe is indistinguishable from a slow one without the capture)
    // plus DOM, the HTTP method with the heaviest per-round machinery.
    let methods = [
        (MethodId::WebSocket, BrowserKind::Chrome, OsKind::Ubuntu1204),
        (MethodId::JavaTcp, BrowserKind::Chrome, OsKind::Ubuntu1204),
        (MethodId::FlashTcp, BrowserKind::Chrome, OsKind::Windows7),
        (MethodId::Dom, BrowserKind::Chrome, OsKind::Ubuntu1204),
    ];
    let loss_pcts = [0.0f64, 0.5, 1.0, 2.0, 5.0];

    let med = |v: &[f64]| DistSummary::of_samples(v).p50;
    let mut table = Table::new(
        format!("Δd vs loss ({n} reps, seed {:#x})", args.seed),
        &[
            "method",
            "runtime",
            "loss_pct",
            "d1_median_ms",
            "d2_median_ms",
            "d1_n",
            "d2_n",
            "excluded_rounds",
            "failures",
        ],
    );
    for (method, browser, os) in methods {
        let label = format!("{} / {}", method.display_name(), browser.initial());
        for pct in loss_pcts {
            let cell = ExperimentCell::builder(method, RuntimeSel::Browser(browser), os)
                .reps(n)
                .seed(args.seed)
                .impairment(Impairment::loss(pct / 100.0))
                .build()
                .expect("sweep cells are runnable");
            let r = match ExperimentRunner::try_run(&cell) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("skipping {label} @ {pct}%: {e}");
                    continue;
                }
            };
            table.row(vec![
                Value::Text(method.label().to_string()),
                Value::Text(browser.initial().to_string()),
                Value::Num(pct),
                Value::Num(med(&r.d1)),
                Value::Num(med(&r.d2)),
                Value::Int(r.d1.len() as i64),
                Value::Int(r.d2.len() as i64),
                Value::Int(r.excluded_rounds as i64),
                Value::Int(r.failures as i64),
            ]);
        }
    }
    table.note(
        "Reading: the Δd medians barely move across the loss sweep — excluded rounds \
         (those whose probes were retransmitted) absorb the RTO penalty, so the included \
         rounds keep estimating the clean browser overhead, exactly as the paper's \
         exclusion rule intends. Without it, every leaked retransmission would inflate \
         Δd by a full retransmission timeout.",
    );
    println!("{}", table.render(args.format.report_format()));
    let path = args.save_artifact("impair.csv", &table.to_csv());
    println!("Artifact written to {}", path.display());
}
