//! Extension experiment: Δd vs packet loss — how well does the paper's
//! retransmission-exclusion rule protect the delay estimates?
//!
//! Sweeps a symmetric loss rate from 0 to 5% and reports, per method,
//! the Δd medians over the *included* rounds plus how many rounds the
//! exclusion rule discarded. The clean medians should survive the
//! sweep essentially unchanged: a lost probe costs a whole RTO
//! (~200 ms), so a single leaked retransmission would be obvious in
//! the medians.

use bnm_bench::cli::BenchArgs;
use bnm_bench::heading;
use bnm_browser::BrowserKind;
use bnm_core::{ExperimentCell, ExperimentRunner, Impairment, RuntimeSel};
use bnm_methods::MethodId;
use bnm_time::OsKind;

fn median(v: &[f64]) -> f64 {
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if s.is_empty() {
        f64::NAN
    } else {
        s[s.len() / 2]
    }
}

fn main() {
    let args = BenchArgs::parse();
    let n = args.reps.min(20);
    heading("Extension: Δd vs loss — the §3 retransmission-exclusion rule at work");

    // The three socket methods (echo transports, where a retransmitted
    // probe is indistinguishable from a slow one without the capture)
    // plus DOM, the HTTP method with the heaviest per-round machinery.
    let methods = [
        (MethodId::WebSocket, BrowserKind::Chrome, OsKind::Ubuntu1204),
        (MethodId::JavaTcp, BrowserKind::Chrome, OsKind::Ubuntu1204),
        (MethodId::FlashTcp, BrowserKind::Chrome, OsKind::Windows7),
        (MethodId::Dom, BrowserKind::Chrome, OsKind::Ubuntu1204),
    ];
    let loss_pcts = [0.0f64, 0.5, 1.0, 2.0, 5.0];

    println!(
        "{:<24} {:>7}  {:>9} {:>9} {:>9} {:>9}",
        "method / runtime", "loss%", "Δd1 med", "Δd2 med", "excluded", "failures"
    );
    let mut csv = String::from(
        "method,runtime,loss_pct,d1_median_ms,d2_median_ms,d1_n,d2_n,excluded_rounds,failures\n",
    );
    for (method, browser, os) in methods {
        let label = format!("{} / {}", method.display_name(), browser.initial());
        for pct in loss_pcts {
            let cell = ExperimentCell::builder(method, RuntimeSel::Browser(browser), os)
                .reps(n)
                .seed(args.seed)
                .impairment(Impairment::loss(pct / 100.0))
                .build()
                .expect("sweep cells are runnable");
            let r = match ExperimentRunner::try_run(&cell) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("skipping {label} @ {pct}%: {e}");
                    continue;
                }
            };
            println!(
                "{label:<24} {pct:>7.1}  {:>9.3} {:>9.3} {:>9} {:>9}",
                median(&r.d1),
                median(&r.d2),
                r.excluded_rounds,
                r.failures
            );
            csv.push_str(&format!(
                "{},{},{},{:.4},{:.4},{},{},{},{}\n",
                method.label(),
                browser.initial(),
                pct,
                median(&r.d1),
                median(&r.d2),
                r.d1.len(),
                r.d2.len(),
                r.excluded_rounds,
                r.failures
            ));
        }
        println!();
    }
    println!(
        "Reading: the Δd medians barely move across the loss sweep — excluded rounds\n\
         (those whose probes were retransmitted) absorb the RTO penalty, so the included\n\
         rounds keep estimating the clean browser overhead, exactly as the paper's\n\
         exclusion rule intends. Without it, every leaked retransmission would inflate\n\
         Δd by a full retransmission timeout."
    );
    let path = args.save_artifact("impair.csv", &csv);
    println!("Artifact written to {}", path.display());
}
