//! Run every regenerator in sequence: Tables 1–4 and Figures 3–5, plus
//! the extension experiments (server-side overhead, impact analysis,
//! Java UDP). Writes all CSV artifacts under `results/`.

use std::process::Command;

use bnm_bench::cli::BenchArgs;
use bnm_bench::{heading, run_cells};
use bnm_browser::BrowserKind;
use bnm_core::appraisal::Appraisal;
use bnm_core::impact::{JitterImpact, ThroughputImpact};
use bnm_core::report::{Render, Table, Value};
use bnm_core::{ExperimentCell, RuntimeSel};
use bnm_methods::MethodId;
use bnm_stats::Summary;
use bnm_time::OsKind;

/// One appraisal row per cell, the columns `summary_line` used to print.
fn appraisal_table(title: &str, results: &[(ExperimentCell, bnm_core::CellResult)]) -> Table {
    let mut table = Table::new(title, &["cell", "d1_median", "d2_median", "iqr", "verdict"]);
    for (cell, result) in results {
        let Ok(a) = Appraisal::try_of(result) else {
            eprintln!("no samples for {}", cell.label());
            continue;
        };
        table.row(vec![
            Value::Text(cell.label()),
            Value::Num(a.d1.median),
            Value::Num(a.d2.median),
            Value::Num(a.pooled.iqr()),
            Value::Text(format!("{:?}", a.verdict)),
        ]);
    }
    table
}

fn run_bin(name: &str) {
    // Re-exec the sibling binaries so each prints its own report; the
    // shared flags (--seed/--reps/--results/--format) pass straight
    // through.
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let status = Command::new(dir.join(name))
        .args(std::env::args().skip(1))
        .status()
        .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
    assert!(status.success(), "{name} failed");
}

fn main() {
    let args = BenchArgs::parse();
    for bin in [
        "table1", "table2", "fig3", "table3", "fig4", "fig5", "table4", "tput", "sweep",
    ] {
        run_bin(bin);
    }

    // ---- Extensions beyond the paper's own tables ----
    let (seed, n) = (args.seed, args.reps);

    heading("Extension: appraisal verdicts per method (best runtime per OS, §5 framing)");
    let mut cells = Vec::new();
    for method in MethodId::ALL {
        for (rt, os) in [
            (RuntimeSel::Browser(BrowserKind::Firefox), OsKind::Windows7),
            (RuntimeSel::Browser(BrowserKind::Chrome), OsKind::Ubuntu1204),
        ] {
            // The builder rejects Table 2 holes at construction time.
            if let Ok(cell) = ExperimentCell::builder(method, rt, os)
                .reps(n)
                .seed(seed)
                .build()
            {
                cells.push(cell);
            }
        }
    }
    let results = run_cells(cells);
    let table = appraisal_table("Appraisal verdicts (best runtime per OS)", &results);
    println!("{}", table.render(args.format.report_format()));
    args.save_artifact("appraisals.csv", &table.to_csv());

    heading("Extension: mobile WebKit runtime (§7) — native methods only");
    let mobile_cells: Vec<ExperimentCell> = MethodId::ALL
        .iter()
        .map(|&m| {
            ExperimentCell::paper(m, RuntimeSel::MobileWebKit, bnm_time::OsKind::Ubuntu1204)
                .with_reps(n)
                .with_seed(seed)
        })
        .filter(ExperimentCell::is_runnable)
        .collect();
    let mobile_results = run_cells(mobile_cells);
    let table = appraisal_table("Mobile WebKit appraisals", &mobile_results);
    println!("{}", table.render(args.format.report_format()));
    println!(
        "Reading: without plug-ins, WebSocket is \"the remaining choice for performing\n\
         socket-based measurement in both fixed and mobile network platforms\" (§2.1)."
    );

    heading("Extension: impact of Δd on jitter and throughput estimates (§2.2)");
    for (cell, result) in &results {
        if !matches!(cell.method, MethodId::FlashGet | MethodId::WebSocket) {
            continue;
        }
        let wire: Vec<f64> = result
            .measurements
            .iter()
            .map(|m| m.network_rtt_ms())
            .collect();
        let browser: Vec<f64> = result
            .measurements
            .iter()
            .map(|m| m.browser_rtt_ms())
            .collect();
        let j = JitterImpact::of(&wire, &browser);
        let med_wire = Summary::of(&wire).median;
        let med_browser = Summary::of(&browser).median;
        let Ok(t) = ThroughputImpact::try_of(100_000, med_wire, med_browser) else {
            continue;
        };
        println!(
            "{:40} jitter {:6.2} → {:6.2} ms   100KB-tput underest {:5.1}%",
            cell.label(),
            j.true_jitter_ms,
            j.measured_jitter_ms,
            t.underestimation() * 100.0
        );
    }

    println!("\nAll experiments complete; artifacts in results/.");
}
