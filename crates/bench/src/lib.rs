//! # bnm-bench — experiment regenerators and benches
//!
//! One binary per table/figure of the paper:
//!
//! | binary            | regenerates                                    |
//! |-------------------|------------------------------------------------|
//! | `table1`          | Table 1 — method taxonomy                      |
//! | `table2`          | Table 2 — browser/OS configurations            |
//! | `fig3`            | Figure 3 (a)–(j) — Δd box plots, full grid     |
//! | `table3`          | Table 3 — Opera Flash GET/POST medians         |
//! | `fig4`            | Figure 4 — Java TCP Δd CDFs (browsers + appletviewer) |
//! | `fig5`            | Figure 5 — timestamp-granularity probe         |
//! | `table4`          | Table 4 — Java methods with `System.nanoTime()`|
//! | `all_experiments` | everything above + CSV dumps under `results/`  |
//!
//! Run with `cargo run --release -p bnm-bench --bin fig3`.
//!
//! Every binary accepts the shared flags of [`cli::BenchArgs`]
//! (`--seed`, `--reps`, `--results`, `--format text|json|csv`).

#![deny(deprecated)]

pub mod cli;
pub mod meta;

use std::fs;
use std::io::IsTerminal;
use std::path::{Path, PathBuf};

use bnm_core::{CellResult, Executor, ExperimentCell};

/// Repetitions per cell: the paper's 50.
pub const PAPER_REPS: u32 = 50;

/// The master seed all regenerators share (override with `BNM_SEED`).
pub fn master_seed() -> u64 {
    std::env::var("BNM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB32B_2013)
}

/// Repetitions to run (override with `BNM_REPS`, e.g. for quick smoke
/// runs).
pub fn reps() -> u32 {
    std::env::var("BNM_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(PAPER_REPS)
}

/// Where CSV artifacts go.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("BNM_RESULTS").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    fs::create_dir_all(&path).expect("create results dir");
    path
}

/// Run a batch of cells on `bnm_core`'s work-stealing executor.
///
/// Results come back **in input order** with numbers bit-identical to a
/// serial run (the executor parallelises at the `(cell × rep)` grain and
/// merges deterministically). Unrunnable cells are reported to stderr
/// and dropped; when stderr is a terminal, a live rep counter is shown.
pub fn run_cells(cells: Vec<ExperimentCell>) -> Vec<(ExperimentCell, CellResult)> {
    let live = std::io::stderr().is_terminal();
    let (results, stats) = Executor::new().run_with_stats(&cells, |p| {
        if live {
            eprint!("\r  {}/{} reps", p.completed, p.total);
        }
    });
    if live && !cells.is_empty() {
        eprintln!("\r  {}", stats.summary());
    }
    cells
        .into_iter()
        .zip(results)
        .filter_map(|(cell, r)| match r {
            Ok(result) => Some((cell, result)),
            Err(e) => {
                eprintln!("skipping {}: {e}", cell.label());
                None
            }
        })
        .collect()
}

/// Write a string artifact into the results directory.
pub fn save(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    fs::write(&path, contents).expect("write artifact");
    path
}

/// Print a horizontal rule + heading.
pub fn heading(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Format a median table cell.
pub fn fmt_med(v: f64) -> String {
    format!("{v:8.2}")
}

/// Check that a path exists relative to the repo (diagnostics for the
/// all_experiments binary).
pub fn exists(p: &Path) -> bool {
    p.exists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnm_browser::BrowserKind;
    use bnm_core::RuntimeSel;
    use bnm_methods::MethodId;
    use bnm_time::OsKind;

    #[test]
    fn parallel_and_serial_runs_agree() {
        let mk = || {
            vec![
                ExperimentCell::paper(
                    MethodId::Dom,
                    RuntimeSel::Browser(BrowserKind::Chrome),
                    OsKind::Ubuntu1204,
                )
                .with_reps(4),
                ExperimentCell::paper(
                    MethodId::WebSocket,
                    RuntimeSel::Browser(BrowserKind::Firefox),
                    OsKind::Ubuntu1204,
                )
                .with_reps(4),
            ]
        };
        let par = run_cells(mk());
        let ser: Vec<_> = mk()
            .into_iter()
            .map(|c| {
                let r = bnm_core::ExperimentRunner::try_run(&c).unwrap();
                (c, r)
            })
            .collect();
        // The executor preserves input order, so the rows line up 1:1.
        assert_eq!(par.len(), ser.len());
        for ((pc, pr), (sc, sr)) in par.iter().zip(&ser) {
            assert_eq!(pc.label(), sc.label());
            assert_eq!(pr.d1, sr.d1);
            assert_eq!(pr.d2, sr.d2);
        }
    }

    #[test]
    fn unrunnable_cells_are_dropped_not_fatal() {
        let cells = vec![
            ExperimentCell::paper(
                MethodId::WebSocket,
                RuntimeSel::Browser(BrowserKind::Ie9),
                OsKind::Windows7,
            )
            .with_reps(2),
            ExperimentCell::paper(
                MethodId::XhrGet,
                RuntimeSel::Browser(BrowserKind::Chrome),
                OsKind::Ubuntu1204,
            )
            .with_reps(2),
        ];
        let out = run_cells(cells);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0.method, MethodId::XhrGet);
        assert_eq!(out[0].1.d1.len(), 2);
    }

    #[test]
    fn defaults_without_env() {
        // (Environment overrides are tested manually; here just the
        // defaults' sanity.)
        assert_eq!(PAPER_REPS, 50);
        assert!(master_seed() != 0);
    }
}
