//! Shared command-line parsing for the regenerator binaries.
//!
//! Every binary understands the same four flags, each falling back to
//! the historical environment variable, then to the paper's default:
//!
//! ```text
//! --seed S                 master seed        (env BNM_SEED,    default 0xB32B_2013)
//! --reps N                 repetitions/cell   (env BNM_REPS,    default 50)
//! --results DIR            artifact directory (env BNM_RESULTS, default results/)
//! --format text|json|csv   artifact format    (default csv)
//! ```
//!
//! `--format` governs [`BenchArgs::save_artifact`]: `json` converts the
//! CSV table into an array of objects before writing; `text` and `csv`
//! write the CSV as-is (stdout is already the human-readable view).

use std::fs;
use std::path::PathBuf;

/// Artifact format selected with `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-oriented: artifacts stay CSV, stdout is the report.
    Text,
    /// Artifacts converted to JSON (array of objects).
    Json,
    /// Plain CSV artifacts (the default).
    #[default]
    Csv,
}

impl OutputFormat {
    /// The core rendering backend this artifact format maps onto.
    /// `Text` and `Csv` both keep stdout human-readable (the CSV lives
    /// in the artifact file); `Json` switches stdout to JSON too.
    pub fn report_format(self) -> bnm_core::report::ReportFormat {
        match self {
            OutputFormat::Json => bnm_core::report::ReportFormat::Json,
            OutputFormat::Text | OutputFormat::Csv => bnm_core::report::ReportFormat::Text,
        }
    }
}

/// Parsed arguments shared by every regenerator binary.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Master seed for all cells.
    pub seed: u64,
    /// Repetitions per cell.
    pub reps: u32,
    /// Directory artifacts are written into (created on first save).
    pub results_dir: PathBuf,
    /// Artifact format.
    pub format: OutputFormat,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            seed: crate::master_seed(),
            reps: crate::reps(),
            results_dir: PathBuf::from(
                std::env::var("BNM_RESULTS").unwrap_or_else(|_| "results".to_string()),
            ),
            format: OutputFormat::Csv,
        }
    }
}

impl BenchArgs {
    /// Parse the process arguments, exiting with usage on a bad flag.
    pub fn parse() -> BenchArgs {
        match Self::from_args(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!(
                    "{e}\nusage: [--seed S] [--reps N] [--results DIR] [--format text|json|csv]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit argument list (testable core of
    /// [`BenchArgs::parse`]). Environment fallbacks still apply for
    /// flags that are absent.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<BenchArgs, String> {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let mut take = || it.next().ok_or_else(|| format!("{a} needs a value"));
            match a.as_str() {
                "--seed" => {
                    let v = take()?;
                    out.seed = parse_seed(&v).ok_or_else(|| format!("bad seed: {v}"))?;
                }
                "--reps" => {
                    let v = take()?;
                    out.reps = v.parse().map_err(|_| format!("bad reps: {v}"))?;
                }
                "--results" => out.results_dir = PathBuf::from(take()?),
                "--format" => {
                    out.format = match take()?.as_str() {
                        "text" => OutputFormat::Text,
                        "json" => OutputFormat::Json,
                        "csv" => OutputFormat::Csv,
                        other => return Err(format!("bad format: {other}")),
                    }
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(out)
    }

    /// Write a CSV artifact under the results directory, honouring the
    /// selected format: `json` transposes the table to an array of
    /// objects and swaps the extension; `text`/`csv` write it verbatim.
    /// Returns the path written.
    pub fn save_artifact(&self, name: &str, csv: &str) -> PathBuf {
        fs::create_dir_all(&self.results_dir).expect("create results dir");
        let (path, contents) = match self.format {
            OutputFormat::Json => {
                let json_name = match name.strip_suffix(".csv") {
                    Some(stem) => format!("{stem}.json"),
                    None => format!("{name}.json"),
                };
                (self.results_dir.join(json_name), csv_to_json(csv))
            }
            _ => (self.results_dir.join(name), csv.to_string()),
        };
        fs::write(&path, contents).expect("write artifact");
        path
    }
}

fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        v.parse().ok()
    }
}

/// Convert a CSV table (double-quoted fields allowed, no embedded
/// newlines — all our artifacts satisfy this) into a deterministic JSON
/// array of objects keyed by the header row. Numeric fields stay
/// numbers; everything else becomes a string.
pub fn csv_to_json(csv: &str) -> String {
    let mut lines = csv.lines();
    let Some(header) = lines.next() else {
        return "[]".to_string();
    };
    let keys = split_csv_line(header);
    let mut out = String::from("[");
    for (i, line) in lines.filter(|l| !l.is_empty()).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        for (j, (k, v)) in keys.iter().zip(split_csv_line(line)).enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape(k));
            out.push_str("\":");
            if v.parse::<f64>().is_ok() && !v.is_empty() {
                out.push_str(&v);
            } else {
                out.push('"');
                out.push_str(&escape(&v));
                out.push('"');
            }
        }
        out.push('}');
    }
    out.push(']');
    out
}

/// Split one CSV line into fields, honouring double-quoted fields (a
/// doubled quote inside one is a literal quote).
fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                chars.next();
                cur.push('"');
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<BenchArgs, String> {
        BenchArgs::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_override_defaults() {
        let a = parse(&[
            "--seed",
            "0xAB",
            "--reps",
            "7",
            "--results",
            "/tmp/r",
            "--format",
            "json",
        ])
        .unwrap();
        assert_eq!(a.seed, 0xAB);
        assert_eq!(a.reps, 7);
        assert_eq!(a.results_dir, PathBuf::from("/tmp/r"));
        assert_eq!(a.format, OutputFormat::Json);
        assert_eq!(parse(&["--seed", "12"]).unwrap().seed, 12);
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(parse(&["--format", "xml"])
            .unwrap_err()
            .contains("bad format"));
        assert!(parse(&["--reps"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse(&["--seed", "zap"]).unwrap_err().contains("bad seed"));
    }

    #[test]
    fn csv_converts_to_json_objects() {
        let json = csv_to_json("method,round,med_ms\nxhr_get,1,4.25\nws,2,0.5\n");
        assert_eq!(
            json,
            "[{\"method\":\"xhr_get\",\"round\":1,\"med_ms\":4.25},\
             {\"method\":\"ws\",\"round\":2,\"med_ms\":0.5}]"
                .replace("             ", "")
        );
        assert_eq!(csv_to_json(""), "[]");
    }

    #[test]
    fn quoted_fields_survive_json_conversion() {
        let json = csv_to_json("a,b\n\"x, y\",\"he said \"\"hi\"\"\"\n");
        assert_eq!(json, "[{\"a\":\"x, y\",\"b\":\"he said \\\"hi\\\"\"}]");
    }

    #[test]
    fn save_artifact_honours_format() {
        let dir = std::env::temp_dir().join("bnm_cli_test");
        let _ = fs::remove_dir_all(&dir);
        let mut a = parse(&[]).unwrap();
        a.results_dir = dir.clone();
        a.format = OutputFormat::Csv;
        let p = a.save_artifact("t.csv", "a,b\n1,2\n");
        assert!(p.to_string_lossy().ends_with("t.csv"));
        a.format = OutputFormat::Json;
        let p = a.save_artifact("t.csv", "a,b\n1,2\n");
        assert!(p.to_string_lossy().ends_with("t.json"));
        assert_eq!(fs::read_to_string(&p).unwrap(), "[{\"a\":1,\"b\":2}]");
        let _ = fs::remove_dir_all(&dir);
    }
}
