//! The host-wide TCP layer: socket table, listeners, demultiplexing, ISN
//! generation and timer aggregation.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::net::Ipv4Addr;

use bytes::Bytes;

use bnm_obs::{Component, Trace};
use bnm_sim::time::SimTime;
use bnm_sim::wire::{TcpFlags, TcpSegment};

use crate::seq::SeqNum;
use crate::socket::{LocalEvent, SocketId, TcpConfig, TcpSocket, TcpState};

/// Application-visible socket events, tagged with the socket id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SockEvent {
    /// An active open completed.
    Connected {
        /// The connecting socket.
        sock: SocketId,
    },
    /// Send-buffer space freed after a truncated `send`.
    Writable {
        /// The writable socket.
        sock: SocketId,
    },
    /// A listener accepted a connection.
    Accepted {
        /// Local port that was listening.
        listener_port: u16,
        /// The newly created connection socket.
        sock: SocketId,
        /// Remote address.
        peer: (Ipv4Addr, u16),
    },
    /// In-order data is readable on `sock`.
    Data {
        /// The socket with readable bytes.
        sock: SocketId,
    },
    /// The peer closed its direction.
    PeerClosed {
        /// The half-closed socket.
        sock: SocketId,
    },
    /// Orderly termination finished.
    Closed {
        /// The terminated socket.
        sock: SocketId,
    },
    /// The connection was reset or timed out.
    Reset {
        /// The reset socket.
        sock: SocketId,
    },
}

/// The TCP layer of one host.
#[derive(Debug)]
pub struct TcpStack {
    local_ip: Ipv4Addr,
    cfg: TcpConfig,
    sockets: Vec<Option<TcpSocket>>,
    /// `(peer_ip, peer_port, local_port) → socket`.
    tuple_map: HashMap<(Ipv4Addr, u16, u16), SocketId>,
    listeners: HashSet<u16>,
    next_ephemeral: u16,
    isn_counter: u32,
    out: Vec<(Ipv4Addr, TcpSegment)>,
    events: VecDeque<SockEvent>,
    /// Segments dropped for having no matching socket or listener.
    pub no_socket_drops: u64,
    trace: Trace,
    /// Active opens awaiting their `Connected` event, for handshake
    /// spans. Only populated while tracing is enabled.
    syn_at: HashMap<SocketId, SimTime>,
    /// Min-heap of `(deadline, socket)` hints, refreshed on every socket
    /// mutation and validated lazily against the sockets' true
    /// deadlines. Keeps [`TcpStack::next_deadline`] and
    /// [`TcpStack::on_timers`] from scanning every socket on every
    /// event — on a crowd-scale server host (1,000+ connections) those
    /// scans were the simulation's dominant O(n²) term.
    deadline_heap: BinaryHeap<Reverse<(SimTime, SocketId)>>,
}

impl TcpStack {
    /// A stack bound to `local_ip` with a default per-socket config.
    pub fn new(local_ip: Ipv4Addr, cfg: TcpConfig) -> Self {
        TcpStack {
            local_ip,
            cfg,
            sockets: Vec::new(),
            tuple_map: HashMap::new(),
            listeners: HashSet::new(),
            next_ephemeral: 49152,
            isn_counter: 0x1000,
            out: Vec::new(),
            events: VecDeque::new(),
            no_socket_drops: 0,
            trace: Trace::disabled(),
            syn_at: HashMap::new(),
            deadline_heap: BinaryHeap::new(),
        }
    }

    /// Install a trace handle; active opens get a `tcp/handshake` span
    /// from SYN to the `Connected` event.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// Offset the ephemeral-port and ISN sequences by a flow index, so
    /// several client stacks in one simulation never collide on a
    /// `(port, ISN)` pair even though each stack is deterministic.
    /// Index 0 leaves the stack exactly as [`TcpStack::new`] built it.
    pub fn set_flow_offset(&mut self, index: u64) {
        // 128 ports per stack keeps 64 clients well inside the 49152..
        // ephemeral range; the ISN stride dwarfs the per-connection
        // +64000 step so streams stay disjoint for any realistic run.
        self.next_ephemeral = 49152 + (index as u16 % 128) * 128;
        self.isn_counter = 0x1000u32.wrapping_add((index as u32).wrapping_mul(0x0100_0000));
    }

    /// The IP this stack answers for.
    pub fn local_ip(&self) -> Ipv4Addr {
        self.local_ip
    }

    fn alloc_socket(&mut self, sock: TcpSocket) -> SocketId {
        // Reuse a dead slot if one exists.
        if let Some(idx) = self.sockets.iter().position(|s| s.is_none()) {
            self.sockets[idx] = Some(sock);
            idx
        } else {
            self.sockets.push(Some(sock));
            self.sockets.len() - 1
        }
    }

    fn next_isn(&mut self) -> SeqNum {
        // Deterministic but connection-unique ISN.
        self.isn_counter = self.isn_counter.wrapping_add(64_000);
        SeqNum(self.isn_counter)
    }

    fn alloc_port(&mut self) -> u16 {
        // Linear scan from the ephemeral range; the simulations never
        // exhaust it.
        for _ in 0..16_384 {
            let p = self.next_ephemeral;
            self.next_ephemeral = if p == u16::MAX { 49152 } else { p + 1 };
            let in_use = self.tuple_map.keys().any(|&(_, _, local)| local == p);
            if !in_use && !self.listeners.contains(&p) {
                return p;
            }
        }
        panic!("ephemeral port space exhausted");
    }

    /// Start listening on `port`.
    pub fn listen(&mut self, port: u16) {
        self.listeners.insert(port);
    }

    /// Stop listening on `port` (existing connections unaffected).
    pub fn unlisten(&mut self, port: u16) {
        self.listeners.remove(&port);
    }

    /// Open a connection to `peer`; the SYN leaves immediately.
    pub fn connect(&mut self, now: SimTime, peer: (Ipv4Addr, u16)) -> SocketId {
        self.connect_with(now, peer, self.cfg)
    }

    /// Open a connection with a per-socket config override.
    pub fn connect_with(
        &mut self,
        now: SimTime,
        peer: (Ipv4Addr, u16),
        cfg: TcpConfig,
    ) -> SocketId {
        let port = self.alloc_port();
        let isn = self.next_isn();
        let mut sock = TcpSocket::new((self.local_ip, port), peer, isn, cfg);
        let out = sock.connect(now);
        let id = self.alloc_socket(sock);
        self.tuple_map.insert((peer.0, peer.1, port), id);
        if self.trace.is_enabled() {
            self.trace.count("tcp.connects", 1);
            self.syn_at.insert(id, now);
        }
        for seg in out.segments {
            self.out.push((peer.0, seg));
        }
        self.note_deadline(id);
        id
    }

    /// Queue data on `sock` and push out what the windows allow.
    pub fn send(&mut self, now: SimTime, sock: SocketId, data: &[u8]) -> usize {
        let Some(s) = self.sockets.get_mut(sock).and_then(Option::as_mut) else {
            return 0;
        };
        let n = s.send(data);
        let peer_ip = s.peer.0;
        let out = s.pump(now);
        self.absorb(now, sock, peer_ip, out);
        n
    }

    /// Read all available in-order bytes. Emits a window-update ACK when
    /// the read reopens a cramped receive window.
    pub fn recv(&mut self, sock: SocketId) -> Bytes {
        let Some(s) = self.sockets.get_mut(sock).and_then(Option::as_mut) else {
            return Bytes::new();
        };
        let (data, update) = s.recv_and_update();
        if let Some(seg) = update {
            let peer_ip = s.peer.0;
            self.out.push((peer_ip, seg));
        }
        self.note_deadline(sock);
        data
    }

    /// Begin an orderly close.
    pub fn close(&mut self, now: SimTime, sock: SocketId) {
        let Some(s) = self.sockets.get_mut(sock).and_then(Option::as_mut) else {
            return;
        };
        s.close();
        let peer_ip = s.peer.0;
        let out = s.pump(now);
        self.absorb(now, sock, peer_ip, out);
    }

    /// Abort with RST.
    pub fn abort(&mut self, sock: SocketId) {
        let Some(s) = self.sockets.get_mut(sock).and_then(Option::as_mut) else {
            return;
        };
        let peer_ip = s.peer.0;
        let out = s.abort();
        // Aborts never surface `Connected`, so the instant is immaterial.
        self.absorb(SimTime::ZERO, sock, peer_ip, out);
        self.reap(sock);
    }

    /// Connection state, if the socket exists.
    pub fn state(&self, sock: SocketId) -> Option<TcpState> {
        self.sockets
            .get(sock)
            .and_then(Option::as_ref)
            .map(|s| s.state)
    }

    /// Smoothed RTT of a socket.
    pub fn srtt(&self, sock: SocketId) -> Option<bnm_sim::time::SimDuration> {
        self.sockets
            .get(sock)
            .and_then(Option::as_ref)
            .and_then(|s| s.srtt())
    }

    /// Local port of a socket.
    pub fn local_port(&self, sock: SocketId) -> Option<u16> {
        self.sockets
            .get(sock)
            .and_then(Option::as_ref)
            .map(|s| s.local.1)
    }

    /// Process one inbound segment addressed to this host.
    pub fn process(&mut self, now: SimTime, src_ip: Ipv4Addr, seg: TcpSegment) {
        let key = (src_ip, seg.src_port, seg.dst_port);
        if let Some(&id) = self.tuple_map.get(&key) {
            let s = self.sockets[id].as_mut().expect("mapped socket exists");
            let out = s.on_segment(now, &seg);
            self.absorb(now, id, src_ip, out);
            self.maybe_reap(id);
            return;
        }
        // New connection?
        if seg.flags.contains(TcpFlags::SYN)
            && !seg.flags.contains(TcpFlags::ACK)
            && self.listeners.contains(&seg.dst_port)
        {
            let isn = self.next_isn();
            let mut sock = TcpSocket::new(
                (self.local_ip, seg.dst_port),
                (src_ip, seg.src_port),
                isn,
                self.cfg,
            );
            let out = sock.accept_syn(now, &seg);
            let id = self.alloc_socket(sock);
            self.tuple_map.insert(key, id);
            self.absorb(now, id, src_ip, out);
            return;
        }
        self.no_socket_drops += 1;
        // RFC-style: RST stray non-RST segments.
        if !seg.flags.contains(TcpFlags::RST) {
            let rst = TcpSegment {
                src_port: seg.dst_port,
                dst_port: seg.src_port,
                seq: seg.ack,
                ack: seg.seq.wrapping_add(seg.payload.len() as u32 + 1),
                flags: TcpFlags::RST | TcpFlags::ACK,
                window: 0,
                mss: None,
                payload: Bytes::new(),
            };
            self.out.push((src_ip, rst));
        }
    }

    /// Poll every socket whose timer deadline has passed.
    ///
    /// Due sockets are found through the deadline heap rather than a
    /// full scan; entries whose hint no longer matches the socket's
    /// current deadline are stale and skipped (the live deadline, if
    /// any, has its own entry). Sockets are then processed in ascending
    /// id order — exactly the order the original full scan used, so
    /// simulations are bit-identical.
    pub fn on_timers(&mut self, now: SimTime) {
        let mut due: Vec<SocketId> = Vec::new();
        while let Some(&Reverse((d, id))) = self.deadline_heap.peek() {
            if d > now {
                break;
            }
            self.deadline_heap.pop();
            let current = self
                .sockets
                .get(id)
                .and_then(Option::as_ref)
                .and_then(TcpSocket::next_deadline);
            if current == Some(d) {
                due.push(id);
            }
        }
        due.sort_unstable();
        due.dedup();
        for id in due {
            let Some(s) = self.sockets[id].as_mut() else {
                continue;
            };
            if s.next_deadline().is_some_and(|d| d <= now) {
                let peer_ip = s.peer.0;
                let out = s.on_timers(now);
                self.absorb(now, id, peer_ip, out);
                self.maybe_reap(id);
            }
        }
    }

    /// Earliest timer deadline across all sockets.
    ///
    /// Pops stale heap entries until the top hint matches a live
    /// socket's current deadline; every live deadline is guaranteed an
    /// entry, so the surviving top is the true minimum.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((d, id))) = self.deadline_heap.peek() {
            let current = self
                .sockets
                .get(id)
                .and_then(Option::as_ref)
                .and_then(TcpSocket::next_deadline);
            if current == Some(d) {
                return Some(d);
            }
            self.deadline_heap.pop();
        }
        None
    }

    /// Drain outbound segments as `(dst_ip, segment)` pairs.
    pub fn take_out(&mut self) -> Vec<(Ipv4Addr, TcpSegment)> {
        std::mem::take(&mut self.out)
    }

    /// Pop the next application event.
    pub fn pop_event(&mut self) -> Option<SockEvent> {
        self.events.pop_front()
    }

    fn absorb(
        &mut self,
        now: SimTime,
        id: SocketId,
        peer_ip: Ipv4Addr,
        out: crate::socket::SocketOutput,
    ) {
        for seg in out.segments {
            self.out.push((peer_ip, seg));
        }
        if let Some((start, end)) = out.retrans {
            self.trace.span(
                start.as_nanos(),
                end.as_nanos(),
                "tcp",
                "retransmit",
                Some(Component::Retrans),
            );
            self.trace.count("tcp.retransmits", 1);
        }
        for ev in out.events {
            let mapped = match ev {
                LocalEvent::Connected => {
                    if let Some(start) = self.syn_at.remove(&id) {
                        self.trace.span(
                            start.as_nanos(),
                            now.as_nanos(),
                            "tcp",
                            "handshake",
                            Some(Component::Handshake),
                        );
                        self.trace
                            .observe("tcp.handshake_ns", now.saturating_since(start).as_nanos());
                    }
                    SockEvent::Connected { sock: id }
                }
                LocalEvent::Writable => SockEvent::Writable { sock: id },
                LocalEvent::Accepted => {
                    let s = self.sockets[id].as_ref().unwrap();
                    SockEvent::Accepted {
                        listener_port: s.local.1,
                        sock: id,
                        peer: s.peer,
                    }
                }
                LocalEvent::DataReady => SockEvent::Data { sock: id },
                LocalEvent::PeerClosed => SockEvent::PeerClosed { sock: id },
                LocalEvent::Closed => SockEvent::Closed { sock: id },
                LocalEvent::Reset => SockEvent::Reset { sock: id },
            };
            self.events.push_back(mapped);
        }
        self.note_deadline(id);
    }

    /// Record `id`'s current deadline in the hint heap. Cheap and
    /// idempotent; called after every operation that can re-arm a
    /// socket timer.
    fn note_deadline(&mut self, id: SocketId) {
        if let Some(d) = self
            .sockets
            .get(id)
            .and_then(Option::as_ref)
            .and_then(TcpSocket::next_deadline)
        {
            self.deadline_heap.push(Reverse((d, id)));
        }
    }

    fn maybe_reap(&mut self, id: SocketId) {
        let Some(s) = self.sockets[id].as_ref() else {
            return;
        };
        if s.is_closed() && s.readable() == 0 {
            self.reap(id);
        }
    }

    fn reap(&mut self, id: SocketId) {
        self.syn_at.remove(&id);
        if let Some(s) = self.sockets[id].take() {
            self.tuple_map.remove(&(s.peer.0, s.peer.1, s.local.1));
        }
    }

    /// Number of live sockets (diagnostics).
    pub fn live_sockets(&self) -> usize {
        self.sockets.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    /// Deliver all queued segments between two stacks until quiescent.
    fn converge(now: SimTime, a: &mut TcpStack, b: &mut TcpStack) {
        for _ in 0..128 {
            let out_a = a.take_out();
            let out_b = b.take_out();
            if out_a.is_empty() && out_b.is_empty() {
                return;
            }
            for (dst, seg) in out_a {
                assert_eq!(dst, B);
                b.process(now, A, seg);
            }
            for (dst, seg) in out_b {
                assert_eq!(dst, A);
                a.process(now, B, seg);
            }
        }
        panic!("stacks did not converge");
    }

    fn drain(stack: &mut TcpStack) -> Vec<SockEvent> {
        std::iter::from_fn(|| stack.pop_event()).collect()
    }

    #[test]
    fn connect_accept_and_exchange() {
        let mut client = TcpStack::new(A, TcpConfig::default());
        let mut server = TcpStack::new(B, TcpConfig::default());
        server.listen(80);
        let now = SimTime::ZERO;
        let cs = client.connect(now, (B, 80));
        converge(now, &mut client, &mut server);
        let cev = drain(&mut client);
        let sev = drain(&mut server);
        assert!(cev.contains(&SockEvent::Connected { sock: cs }));
        let ss = match sev.as_slice() {
            [SockEvent::Accepted {
                listener_port: 80,
                sock,
                ..
            }] => *sock,
            other => panic!("unexpected events {other:?}"),
        };
        // Client sends a request; server reads it and answers.
        client.send(now, cs, b"ping");
        converge(now, &mut client, &mut server);
        assert_eq!(drain(&mut server), vec![SockEvent::Data { sock: ss }]);
        assert_eq!(&server.recv(ss)[..], b"ping");
        server.send(now, ss, b"pong");
        converge(now, &mut client, &mut server);
        assert_eq!(drain(&mut client), vec![SockEvent::Data { sock: cs }]);
        assert_eq!(&client.recv(cs)[..], b"pong");
    }

    #[test]
    fn syn_to_closed_port_is_rst() {
        let mut client = TcpStack::new(A, TcpConfig::default());
        let mut server = TcpStack::new(B, TcpConfig::default());
        let now = SimTime::ZERO;
        let cs = client.connect(now, (B, 81)); // nothing listens
        converge(now, &mut client, &mut server);
        assert_eq!(drain(&mut client), vec![SockEvent::Reset { sock: cs }]);
        assert_eq!(server.no_socket_drops, 1);
    }

    #[test]
    fn concurrent_connections_demux_correctly() {
        let mut client = TcpStack::new(A, TcpConfig::default());
        let mut server = TcpStack::new(B, TcpConfig::default());
        server.listen(80);
        let now = SimTime::ZERO;
        let c1 = client.connect(now, (B, 80));
        let c2 = client.connect(now, (B, 80));
        converge(now, &mut client, &mut server);
        drain(&mut client);
        let socks: Vec<SocketId> = drain(&mut server)
            .into_iter()
            .filter_map(|e| match e {
                SockEvent::Accepted { sock, .. } => Some(sock),
                _ => None,
            })
            .collect();
        assert_eq!(socks.len(), 2);
        client.send(now, c1, b"one");
        client.send(now, c2, b"two");
        converge(now, &mut client, &mut server);
        drain(&mut server);
        let payloads: Vec<Bytes> = socks.iter().map(|&s| server.recv(s)).collect();
        assert_eq!(&payloads[0][..], b"one");
        assert_eq!(&payloads[1][..], b"two");
    }

    #[test]
    fn orderly_close_reaps_sockets() {
        let mut client = TcpStack::new(A, TcpConfig::default());
        let mut server = TcpStack::new(B, TcpConfig::default());
        server.listen(80);
        let mut now = SimTime::ZERO;
        let cs = client.connect(now, (B, 80));
        converge(now, &mut client, &mut server);
        let ss = match drain(&mut server).as_slice() {
            [SockEvent::Accepted { sock, .. }] => *sock,
            _ => panic!(),
        };
        drain(&mut client);
        client.close(now, cs);
        converge(now, &mut client, &mut server);
        server.close(now, ss);
        converge(now, &mut client, &mut server);
        // Server side fully closed (LastAck → Closed); client in TimeWait.
        assert_eq!(client.state(cs), Some(TcpState::TimeWait));
        assert_eq!(server.live_sockets(), 0);
        // Time passes; client reaps.
        now += bnm_sim::time::SimDuration::from_secs(11);
        client.on_timers(now);
        assert_eq!(client.live_sockets(), 0);
    }

    #[test]
    fn stack_timers_retransmit_lost_syn() {
        let mut client = TcpStack::new(A, TcpConfig::default());
        let now = SimTime::ZERO;
        let _cs = client.connect(now, (B, 80));
        let lost = client.take_out();
        assert_eq!(lost.len(), 1); // drop it on the floor
        let dl = client.next_deadline().expect("rto armed");
        client.on_timers(dl);
        let rtx = client.take_out();
        assert_eq!(rtx.len(), 1);
        assert!(rtx[0].1.flags.contains(TcpFlags::SYN));
    }

    #[test]
    fn ports_are_unique_across_live_connections() {
        let mut client = TcpStack::new(A, TcpConfig::default());
        let now = SimTime::ZERO;
        let ids: Vec<SocketId> = (0..50).map(|_| client.connect(now, (B, 80))).collect();
        let mut ports: Vec<u16> = ids.iter().map(|&i| client.local_port(i).unwrap()).collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 50);
    }
}
