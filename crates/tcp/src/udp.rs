//! A minimal UDP layer: port binding, send, receive queue.
//!
//! Exists for the Java-applet UDP socket method the paper lists in
//! Table 1 (and excludes from its own runs "to make the comparison more
//! comparable" — we implement it as an extension experiment).

use std::collections::{HashSet, VecDeque};
use std::net::Ipv4Addr;

use bytes::Bytes;

use bnm_sim::wire::UdpDatagram;

/// The UDP layer of one host.
#[derive(Debug)]
pub struct UdpStack {
    local_ip: Ipv4Addr,
    bound: HashSet<u16>,
    next_ephemeral: u16,
    out: Vec<(Ipv4Addr, UdpDatagram)>,
    inbox: VecDeque<UdpRx>,
    /// Datagrams dropped for lacking a bound port.
    pub unbound_drops: u64,
}

/// One received datagram.
#[derive(Debug, Clone)]
pub struct UdpRx {
    /// The local port it arrived on.
    pub local_port: u16,
    /// Sender address.
    pub from: (Ipv4Addr, u16),
    /// Payload bytes.
    pub payload: Bytes,
}

impl UdpStack {
    /// A stack for `local_ip`.
    pub fn new(local_ip: Ipv4Addr) -> Self {
        UdpStack {
            local_ip,
            bound: HashSet::new(),
            next_ephemeral: 40000,
            out: Vec::new(),
            inbox: VecDeque::new(),
            unbound_drops: 0,
        }
    }

    /// The IP this stack answers for.
    pub fn local_ip(&self) -> Ipv4Addr {
        self.local_ip
    }

    /// Bind a specific port. Returns false if already bound.
    pub fn bind(&mut self, port: u16) -> bool {
        self.bound.insert(port)
    }

    /// Bind a fresh ephemeral port and return it.
    pub fn bind_ephemeral(&mut self) -> u16 {
        loop {
            let p = self.next_ephemeral;
            self.next_ephemeral = if p == 49151 { 40000 } else { p + 1 };
            if self.bound.insert(p) {
                return p;
            }
        }
    }

    /// Release a port.
    pub fn unbind(&mut self, port: u16) {
        self.bound.remove(&port);
    }

    /// Queue a datagram from `from_port` (must be bound) to `to`.
    pub fn send(&mut self, from_port: u16, to: (Ipv4Addr, u16), payload: Bytes) {
        assert!(
            self.bound.contains(&from_port),
            "sending from unbound port {from_port}"
        );
        self.out.push((
            to.0,
            UdpDatagram {
                src_port: from_port,
                dst_port: to.1,
                payload,
            },
        ));
    }

    /// Process an inbound datagram addressed to this host.
    pub fn process(&mut self, src_ip: Ipv4Addr, dgram: UdpDatagram) {
        if !self.bound.contains(&dgram.dst_port) {
            self.unbound_drops += 1;
            return;
        }
        self.inbox.push_back(UdpRx {
            local_port: dgram.dst_port,
            from: (src_ip, dgram.src_port),
            payload: dgram.payload,
        });
    }

    /// Drain outbound datagrams as `(dst_ip, datagram)`.
    pub fn take_out(&mut self) -> Vec<(Ipv4Addr, UdpDatagram)> {
        std::mem::take(&mut self.out)
    }

    /// Pop the next received datagram.
    pub fn pop_rx(&mut self) -> Option<UdpRx> {
        self.inbox.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn bind_send_receive() {
        let mut a = UdpStack::new(A);
        let mut b = UdpStack::new(B);
        b.bind(7);
        let p = a.bind_ephemeral();
        a.send(p, (B, 7), Bytes::from_static(b"echo"));
        for (dst, d) in a.take_out() {
            assert_eq!(dst, B);
            b.process(A, d);
        }
        let rx = b.pop_rx().expect("delivered");
        assert_eq!(rx.local_port, 7);
        assert_eq!(rx.from, (A, p));
        assert_eq!(&rx.payload[..], b"echo");
    }

    #[test]
    fn unbound_port_drops() {
        let mut b = UdpStack::new(B);
        b.process(
            A,
            UdpDatagram {
                src_port: 1,
                dst_port: 9,
                payload: Bytes::new(),
            },
        );
        assert!(b.pop_rx().is_none());
        assert_eq!(b.unbound_drops, 1);
    }

    #[test]
    fn double_bind_fails() {
        let mut b = UdpStack::new(B);
        assert!(b.bind(7));
        assert!(!b.bind(7));
        b.unbind(7);
        assert!(b.bind(7));
    }

    #[test]
    fn ephemeral_ports_unique() {
        let mut a = UdpStack::new(A);
        let p1 = a.bind_ephemeral();
        let p2 = a.bind_ephemeral();
        assert_ne!(p1, p2);
    }

    #[test]
    #[should_panic(expected = "unbound port")]
    fn send_from_unbound_panics() {
        let mut a = UdpStack::new(A);
        a.send(5, (B, 7), Bytes::new());
    }
}
