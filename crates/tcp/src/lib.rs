//! # bnm-tcp — simulated TCP/UDP stack over `bnm-sim`
//!
//! A compact but real TCP implementation in the smoltcp tradition: a
//! synchronous state machine with no internal threading, driven entirely by
//! the discrete-event engine. It provides everything the IMC'13
//! reproduction needs from a transport:
//!
//! * the **3-way handshake** on the wire (SYN carries an MSS option) —
//!   required to reproduce Table 3, where some browser methods silently
//!   include the handshake in their "RTT";
//! * data transfer with MSS segmentation, cumulative ACKs, flow control
//!   against the peer's advertised window, and a Reno-flavoured congestion
//!   window;
//! * RFC 6298-style retransmission timing (SRTT/RTTVAR, exponential
//!   backoff) so the stack survives the fault-injection tests;
//! * orderly close (FIN in both directions, TIME-WAIT) and RST handling;
//! * a minimal **UDP** layer for the Java-applet UDP method listed in the
//!   paper's Table 1.
//!
//! The crate also provides [`host::Host`], a `bnm-sim` node that wires a
//! NIC to an IPv4 layer, the TCP/UDP stacks and an application callback
//! object ([`host::HostApp`]). Browsers (`bnm-browser`) and the web server
//! (`bnm-http`) are `HostApp` implementations.
//!
//! Deliberate simplifications (documented limitations):
//!
//! * no out-of-order reassembly — a gap triggers a duplicate ACK and the
//!   sender's retransmit fills it (the simulated testbed preserves order
//!   unless fault injection is enabled);
//! * no SACK, window scaling, or timestamps — the testbed's
//!   bandwidth-delay product never needs them;
//! * neighbor resolution is static (no ARP), mirroring an
//!   `ip neigh add`-provisioned testbed.

pub mod buffer;
pub mod host;
pub mod seq;
pub mod socket;
pub mod stack;
pub mod udp;

pub use host::{Host, HostApp, HostConfig, HostCtx};
pub use socket::{SocketId, TcpConfig, TcpState};
pub use stack::{SockEvent, TcpStack};
pub use udp::UdpStack;
