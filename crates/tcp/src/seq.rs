//! Wrapping 32-bit sequence-number arithmetic (RFC 793 §3.3).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A TCP sequence number with modular comparison semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// `self < other` in sequence space.
    pub fn lt(self, other: SeqNum) -> bool {
        (other.0.wrapping_sub(self.0) as i32) > 0
    }

    /// `self <= other` in sequence space.
    pub fn le(self, other: SeqNum) -> bool {
        self == other || self.lt(other)
    }

    /// `self > other` in sequence space.
    pub fn gt(self, other: SeqNum) -> bool {
        other.lt(self)
    }

    /// `self >= other` in sequence space.
    pub fn ge(self, other: SeqNum) -> bool {
        other.le(self)
    }

    /// Distance from `earlier` to `self` (assumes `earlier.le(self)` and a
    /// gap below 2³¹).
    pub fn since(self, earlier: SeqNum) -> u32 {
        self.0.wrapping_sub(earlier.0)
    }

    /// Whether `self` lies in the half-open window `[start, start+len)`.
    pub fn in_window(self, start: SeqNum, len: u32) -> bool {
        if len == 0 {
            return false;
        }
        start.le(self) && self.lt(start + len)
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u32> for SeqNum {
    fn add_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub<u32> for SeqNum {
    type Output = SeqNum;
    fn sub(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_sub(rhs))
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_ordering() {
        assert!(SeqNum(1).lt(SeqNum(2)));
        assert!(SeqNum(2).gt(SeqNum(1)));
        assert!(SeqNum(5).le(SeqNum(5)));
        assert!(SeqNum(5).ge(SeqNum(5)));
        assert!(!SeqNum(5).lt(SeqNum(5)));
    }

    #[test]
    fn wrapping_ordering() {
        let high = SeqNum(u32::MAX - 10);
        let wrapped = high + 20;
        assert_eq!(wrapped.0, 9);
        assert!(high.lt(wrapped));
        assert!(wrapped.gt(high));
        assert_eq!(wrapped.since(high), 20);
    }

    #[test]
    fn window_membership() {
        let start = SeqNum(u32::MAX - 5);
        assert!(start.in_window(start, 1));
        assert!((start + 9).in_window(start, 10));
        assert!(!(start + 10).in_window(start, 10));
        assert!(!SeqNum(0).in_window(start, 0));
        // Window spanning the wrap point.
        assert!(SeqNum(2).in_window(start, 10));
    }

    #[test]
    fn add_assign_and_sub() {
        let mut s = SeqNum(10);
        s += 5;
        assert_eq!(s, SeqNum(15));
        assert_eq!(s - 20, SeqNum(u32::MAX - 4));
    }
}
