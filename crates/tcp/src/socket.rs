//! The per-connection TCP state machine.
//!
//! One [`TcpSocket`] is a synchronous automaton: feed it a segment (or a
//! timer poll) and it returns the segments to transmit plus local events
//! for the application. It owns no clocks and does no I/O — the stack and
//! host layers wire it to the simulated world, which keeps every
//! transition unit-testable in isolation.

use bytes::Bytes;
use std::net::Ipv4Addr;

use bnm_sim::time::{SimDuration, SimTime};
use bnm_sim::wire::{TcpFlags, TcpSegment};

use crate::buffer::{RecvBuffer, SendBuffer};
use crate::seq::SeqNum;

/// Index of a socket within its stack.
pub type SocketId = usize;

/// TCP connection states (RFC 793 §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open placeholder (listening sockets live in the stack; an
    /// accepted connection starts at `SynReceived`).
    Listen,
    /// Active open: SYN sent, waiting for SYN-ACK.
    SynSent,
    /// Passive open: SYN-ACK sent, waiting for ACK.
    SynReceived,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, not yet acknowledged.
    FinWait1,
    /// Our FIN acknowledged; waiting for the peer's FIN.
    FinWait2,
    /// Simultaneous close: both FINs in flight.
    Closing,
    /// Peer closed first; we may still send.
    CloseWait,
    /// We sent our FIN after `CloseWait`.
    LastAck,
    /// Both sides closed; draining duplicates.
    TimeWait,
}

/// Socket-local events surfaced to the application layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalEvent {
    /// Active open completed (SYN-ACK received and acknowledged).
    Connected,
    /// Send-buffer space freed after a `send` was truncated: the
    /// application can continue writing its backlog.
    Writable,
    /// Passive open completed (final handshake ACK received).
    Accepted,
    /// New in-order data is readable.
    DataReady,
    /// The peer sent FIN; no more data will arrive.
    PeerClosed,
    /// The connection fully terminated in an orderly way.
    Closed,
    /// The connection was reset (RST or retry exhaustion).
    Reset,
}

/// Per-socket configuration.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size we announce and segment by.
    pub mss: u16,
    /// Send buffer capacity (bytes).
    pub send_buf: usize,
    /// Receive buffer capacity (bytes) — advertised window ceiling.
    pub recv_buf: usize,
    /// Nagle's algorithm (off by default: the probe messages must leave
    /// immediately, as they do for the paper's single-packet probes).
    pub nagle: bool,
    /// Delayed-ACK timeout; `None` acknowledges every data segment
    /// immediately.
    pub delayed_ack: Option<SimDuration>,
    /// Initial retransmission timeout (RFC 6298 suggests 1 s).
    pub rto_initial: SimDuration,
    /// Lower bound on the RTO.
    pub rto_min: SimDuration,
    /// Upper bound on the RTO.
    pub rto_max: SimDuration,
    /// Give up after this many consecutive retransmissions.
    pub max_retries: u32,
    /// TIME-WAIT duration (fixed 10 s, like smoltcp).
    pub time_wait: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            send_buf: 64 * 1024,
            recv_buf: 64 * 1024,
            nagle: false,
            delayed_ack: None,
            rto_initial: SimDuration::from_secs(1),
            rto_min: SimDuration::from_millis(200),
            rto_max: SimDuration::from_secs(60),
            max_retries: 8,
            time_wait: SimDuration::from_secs(10),
        }
    }
}

/// Everything a state transition wants to hand back to the stack.
#[derive(Debug, Default)]
pub struct SocketOutput {
    /// Segments to put on the wire, in order.
    pub segments: Vec<TcpSegment>,
    /// Events for the application.
    pub events: Vec<LocalEvent>,
    /// A data retransmission happened: the `(wait_start, now)` interval
    /// spent waiting for it (RTO expiry: from when the lost transmission
    /// was sent; fast retransmit: zero-width at the third dup-ACK). SYN
    /// retransmissions are *not* reported — their wait is already inside
    /// the stack's handshake span and must not be double-counted.
    pub retrans: Option<(SimTime, SimTime)>,
}

impl SocketOutput {
    fn seg(&mut self, s: TcpSegment) {
        self.segments.push(s);
    }
    fn ev(&mut self, e: LocalEvent) {
        self.events.push(e);
    }
}

/// A TCP connection endpoint.
#[derive(Debug)]
pub struct TcpSocket {
    /// Current state.
    pub state: TcpState,
    /// Local (ip, port).
    pub local: (Ipv4Addr, u16),
    /// Remote (ip, port).
    pub peer: (Ipv4Addr, u16),
    cfg: TcpConfig,

    // Send side.
    snd_buf: SendBuffer,
    iss: SeqNum,
    snd_una: SeqNum,
    snd_nxt: SeqNum,
    snd_wnd: u32,
    peer_mss: u16,
    cwnd: u32,
    ssthresh: u32,
    dup_acks: u32,

    // Receive side.
    rcv_buf: RecvBuffer,
    rcv_nxt: SeqNum,

    // Close bookkeeping.
    fin_queued: bool,
    fin_seq: Option<SeqNum>,

    // RTO state (RFC 6298).
    srtt_ns: Option<f64>,
    rttvar_ns: f64,
    rto: SimDuration,
    rto_deadline: Option<SimTime>,
    retries: u32,
    /// Outstanding RTT sample: ack level that validates it + send time.
    rtt_sample: Option<(SeqNum, SimTime)>,

    // Delayed-ACK state.
    ack_pending: bool,
    ack_deadline: Option<SimTime>,

    // TIME-WAIT expiry.
    time_wait_deadline: Option<SimTime>,

    /// A `send` was truncated by a full buffer; the app awaits space.
    tx_blocked: bool,

    /// Segments retransmitted (diagnostics).
    pub retransmissions: u64,
}

impl TcpSocket {
    /// A socket for an active open; call [`TcpSocket::connect`] next.
    pub fn new(local: (Ipv4Addr, u16), peer: (Ipv4Addr, u16), iss: SeqNum, cfg: TcpConfig) -> Self {
        TcpSocket {
            state: TcpState::Closed,
            local,
            peer,
            snd_buf: SendBuffer::new(iss + 1, cfg.send_buf),
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: 0,
            peer_mss: 536,
            cwnd: u32::from(cfg.mss) * 10, // IW10, like modern stacks
            ssthresh: u32::MAX,
            dup_acks: 0,
            rcv_buf: RecvBuffer::new(cfg.recv_buf),
            rcv_nxt: SeqNum(0),
            fin_queued: false,
            fin_seq: None,
            srtt_ns: None,
            rttvar_ns: 0.0,
            rto: cfg.rto_initial,
            rto_deadline: None,
            retries: 0,
            rtt_sample: None,
            ack_pending: false,
            ack_deadline: None,
            time_wait_deadline: None,
            tx_blocked: false,
            retransmissions: 0,
            cfg,
        }
    }

    /// Effective MSS (min of ours and the peer's announcement).
    fn effective_mss(&self) -> u32 {
        u32::from(self.cfg.mss.min(self.peer_mss))
    }

    fn base_segment(&self, flags: TcpFlags, seq: SeqNum, payload: Bytes) -> TcpSegment {
        TcpSegment {
            src_port: self.local.1,
            dst_port: self.peer.1,
            seq: seq.0,
            ack: if flags.contains(TcpFlags::ACK) {
                self.rcv_nxt.0
            } else {
                0
            },
            flags,
            window: self.rcv_buf.window(),
            mss: None,
            payload,
        }
    }

    fn pure_ack(&mut self) -> TcpSegment {
        self.ack_pending = false;
        self.ack_deadline = None;
        self.base_segment(TcpFlags::ACK, self.snd_nxt, Bytes::new())
    }

    /// Begin an active open: emits the SYN.
    pub fn connect(&mut self, now: SimTime) -> SocketOutput {
        assert_eq!(self.state, TcpState::Closed, "connect on non-closed socket");
        self.state = TcpState::SynSent;
        self.snd_nxt = self.iss + 1;
        let mut seg = self.base_segment(TcpFlags::SYN, self.iss, Bytes::new());
        seg.mss = Some(self.cfg.mss);
        self.arm_rto(now);
        self.rtt_sample = Some((self.snd_nxt, now));
        let mut out = SocketOutput::default();
        out.seg(seg);
        out
    }

    /// Begin a passive open for a SYN that arrived on a listener.
    pub fn accept_syn(&mut self, now: SimTime, syn: &TcpSegment) -> SocketOutput {
        assert_eq!(self.state, TcpState::Closed);
        self.state = TcpState::SynReceived;
        self.rcv_nxt = SeqNum(syn.seq) + 1;
        if let Some(mss) = syn.mss {
            self.peer_mss = mss;
        }
        self.snd_wnd = u32::from(syn.window);
        self.snd_nxt = self.iss + 1;
        let mut seg = self.base_segment(TcpFlags::SYN | TcpFlags::ACK, self.iss, Bytes::new());
        seg.mss = Some(self.cfg.mss);
        self.arm_rto(now);
        self.rtt_sample = Some((self.snd_nxt, now));
        let mut out = SocketOutput::default();
        out.seg(seg);
        out
    }

    /// Queue application data; returns bytes accepted.
    pub fn send(&mut self, data: &[u8]) -> usize {
        match self.state {
            TcpState::Established
            | TcpState::CloseWait
            | TcpState::SynSent
            | TcpState::SynReceived => {
                if self.fin_queued {
                    return 0;
                }
                let n = self.snd_buf.write(data);
                if n < data.len() {
                    self.tx_blocked = true;
                }
                n
            }
            _ => 0,
        }
    }

    /// Read everything available in order.
    pub fn recv(&mut self) -> Bytes {
        self.recv_and_update().0
    }

    /// Read everything available; if the read reopened a previously
    /// cramped receive window, also return the window-update ACK that
    /// must go on the wire (without it, a sender blocked on a zero
    /// window deadlocks — the classic bulk-transfer stall).
    pub fn recv_and_update(&mut self) -> (Bytes, Option<TcpSegment>) {
        let before = self.rcv_buf.window();
        let data = self.rcv_buf.read_all();
        let after = self.rcv_buf.window();
        let mss = self.effective_mss() as u16;
        let update = if matches!(
            self.state,
            TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
        ) && after > before
            && u32::from(after - before) >= u32::from(mss)
            && before < 4 * mss
        {
            Some(self.pure_ack())
        } else {
            None
        };
        (data, update)
    }

    /// Unread byte count.
    pub fn readable(&self) -> usize {
        self.rcv_buf.len()
    }

    /// Ask for an orderly close: a FIN goes out once the send buffer
    /// drains.
    pub fn close(&mut self) {
        match self.state {
            TcpState::Established
            | TcpState::CloseWait
            | TcpState::SynReceived
            | TcpState::SynSent => {
                self.fin_queued = true;
            }
            _ => {}
        }
    }

    /// Hard reset: emit RST and drop to `Closed` (no events; caller
    /// decides).
    pub fn abort(&mut self) -> SocketOutput {
        let mut out = SocketOutput::default();
        if matches!(
            self.state,
            TcpState::SynSent
                | TcpState::SynReceived
                | TcpState::Established
                | TcpState::FinWait1
                | TcpState::FinWait2
                | TcpState::Closing
                | TcpState::CloseWait
                | TcpState::LastAck
        ) {
            out.seg(self.base_segment(TcpFlags::RST | TcpFlags::ACK, self.snd_nxt, Bytes::new()));
        }
        self.state = TcpState::Closed;
        self.rto_deadline = None;
        out
    }

    /// Whether the socket is finished and can be reaped.
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    /// Bytes in flight (sent, unacknowledged).
    fn inflight(&self) -> u32 {
        self.snd_nxt.since(self.snd_una)
    }

    /// Transmit as much queued data as windows allow; then a queued FIN.
    pub fn pump(&mut self, now: SimTime) -> SocketOutput {
        let mut out = SocketOutput::default();
        if !matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait1 | TcpState::Closing
        ) {
            // FIN during handshake states resolves once established.
            return out;
        }
        let mss = self.effective_mss();
        loop {
            let unsent = self.snd_buf.end().since(self.snd_nxt);
            if unsent == 0 {
                break;
            }
            let wnd = self.snd_wnd.min(self.cwnd);
            let inflight = self.inflight();
            if inflight >= wnd {
                break;
            }
            let room = wnd - inflight;
            let take = unsent.min(room).min(mss);
            if take == 0 {
                break;
            }
            if self.cfg.nagle && take < mss && inflight > 0 {
                break; // hold the small segment until everything is acked
            }
            let payload = self.snd_buf.peek(self.snd_nxt, take as usize);
            let last = take == unsent;
            let flags = if last {
                TcpFlags::ACK | TcpFlags::PSH
            } else {
                TcpFlags::ACK
            };
            let seg = self.base_segment(flags, self.snd_nxt, payload);
            self.snd_nxt += take;
            if self.rtt_sample.is_none() {
                self.rtt_sample = Some((self.snd_nxt, now));
            }
            self.ack_pending = false; // data segments carry the ACK
            self.ack_deadline = None;
            out.seg(seg);
        }
        // FIN once the buffer fully drained.
        if self.fin_queued
            && self.fin_seq.is_none()
            && self.snd_buf.end() == self.snd_nxt
            && matches!(self.state, TcpState::Established | TcpState::CloseWait)
        {
            let seg = self.base_segment(TcpFlags::FIN | TcpFlags::ACK, self.snd_nxt, Bytes::new());
            self.fin_seq = Some(self.snd_nxt);
            self.snd_nxt += 1;
            self.state = match self.state {
                TcpState::Established => TcpState::FinWait1,
                TcpState::CloseWait => TcpState::LastAck,
                s => s,
            };
            out.seg(seg);
        }
        if self.inflight() > 0 && self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        // Zero-window persist: data is waiting but the peer's window is
        // closed. Arm the timer; `retransmit_head` degenerates into a
        // one-byte window probe.
        if self.inflight() == 0
            && self.snd_buf.end().since(self.snd_nxt) > 0
            && self.snd_wnd.min(self.cwnd) == 0
            && self.rto_deadline.is_none()
        {
            self.arm_rto(now);
        }
        out
    }

    /// Process one inbound segment.
    pub fn on_segment(&mut self, now: SimTime, seg: &TcpSegment) -> SocketOutput {
        let mut out = SocketOutput::default();
        if seg.flags.contains(TcpFlags::RST) {
            if self.state != TcpState::Closed {
                self.state = TcpState::Closed;
                self.rto_deadline = None;
                out.ev(LocalEvent::Reset);
            }
            return out;
        }
        match self.state {
            TcpState::Closed | TcpState::Listen => {
                // Stray segment to a dead socket: RST it (stack may also
                // handle this for unknown tuples).
                out.seg(self.base_segment(
                    TcpFlags::RST | TcpFlags::ACK,
                    SeqNum(seg.ack),
                    Bytes::new(),
                ));
            }
            TcpState::SynSent => self.on_segment_syn_sent(now, seg, &mut out),
            TcpState::SynReceived => {
                if seg.flags.contains(TcpFlags::ACK) && SeqNum(seg.ack) == self.iss + 1 {
                    self.state = TcpState::Established;
                    self.snd_wnd = u32::from(seg.window);
                    self.on_ack(now, seg, &mut out);
                    out.ev(LocalEvent::Accepted);
                    // The final handshake ACK may carry data.
                    self.on_data(now, seg, &mut out);
                    let pumped = self.pump(now);
                    out.segments.extend(pumped.segments);
                    out.events.extend(pumped.events);
                }
            }
            _ => {
                // Established and closing states share the data/ACK path.
                if seg.flags.contains(TcpFlags::ACK) {
                    self.on_ack(now, seg, &mut out);
                }
                self.on_data(now, seg, &mut out);
                let pumped = self.pump(now);
                out.segments.extend(pumped.segments);
                out.events.extend(pumped.events);
            }
        }
        out
    }

    fn on_segment_syn_sent(&mut self, now: SimTime, seg: &TcpSegment, out: &mut SocketOutput) {
        let good_ack = seg.flags.contains(TcpFlags::ACK) && SeqNum(seg.ack) == self.iss + 1;
        if seg.flags.contains(TcpFlags::SYN) && good_ack {
            self.rcv_nxt = SeqNum(seg.seq) + 1;
            if let Some(mss) = seg.mss {
                self.peer_mss = mss;
            }
            self.snd_una = SeqNum(seg.ack);
            self.snd_wnd = u32::from(seg.window);
            self.state = TcpState::Established;
            self.take_rtt_sample(now, SeqNum(seg.ack));
            self.rto_deadline = None;
            self.retries = 0;
            out.seg(self.pure_ack());
            out.ev(LocalEvent::Connected);
            // Data queued during connect flows immediately.
            let pumped = self.pump(now);
            out.segments.extend(pumped.segments);
            out.events.extend(pumped.events);
            // A close requested before establishment also proceeds.
            if self.fin_queued {
                let pumped = self.pump(now);
                out.segments.extend(pumped.segments);
            }
        }
        // A bare SYN (simultaneous open) is not supported: ignore; the
        // retransmitted SYN-ACK path resolves real traces.
    }

    fn on_ack(&mut self, now: SimTime, seg: &TcpSegment, out: &mut SocketOutput) {
        let ack = SeqNum(seg.ack);
        self.snd_wnd = u32::from(seg.window);
        if ack.gt(self.snd_una) && ack.le(self.snd_nxt) {
            let newly = ack.since(self.snd_una);
            self.snd_una = ack;
            self.snd_buf.ack_to(ack);
            if self.tx_blocked && self.snd_buf.free() > 0 {
                self.tx_blocked = false;
                out.ev(LocalEvent::Writable);
            }
            self.dup_acks = 0;
            self.take_rtt_sample(now, ack);
            self.retries = 0;
            // Congestion growth: slow start below ssthresh, else one MSS
            // per RTT approximated per-ACK.
            let mss = self.effective_mss();
            if self.cwnd < self.ssthresh {
                self.cwnd = self.cwnd.saturating_add(newly.min(mss));
            } else {
                self.cwnd = self.cwnd.saturating_add((mss * mss / self.cwnd).max(1));
            }
            if self.inflight() == 0 && self.fin_acked() == FinAckState::NoFin {
                self.rto_deadline = None;
            } else {
                self.arm_rto(now);
            }
            // Our FIN acknowledged?
            if let Some(fin_seq) = self.fin_seq {
                if ack.gt(fin_seq) {
                    match self.state {
                        TcpState::FinWait1 => self.state = TcpState::FinWait2,
                        TcpState::Closing => self.enter_time_wait(now),
                        TcpState::LastAck => {
                            self.state = TcpState::Closed;
                            self.rto_deadline = None;
                            out.ev(LocalEvent::Closed);
                        }
                        _ => {}
                    }
                }
            }
        } else if ack == self.snd_una && self.inflight() > 0 && seg.payload.is_empty() {
            self.dup_acks += 1;
            if self.dup_acks == 3 {
                // Fast retransmit.
                let seg = self.retransmit_head();
                self.ssthresh = (self.inflight() / 2).max(2 * self.effective_mss());
                self.cwnd = self.ssthresh;
                out.seg(seg);
                out.retrans = Some((now, now));
            }
        }
    }

    fn on_data(&mut self, now: SimTime, seg: &TcpSegment, out: &mut SocketOutput) {
        let has_fin = seg.flags.contains(TcpFlags::FIN);
        if seg.payload.is_empty() && !has_fin {
            return;
        }
        let seq = SeqNum(seg.seq);
        let payload_end = seq + seg.payload.len() as u32;
        // Trim any already-received prefix.
        let payload: &[u8] = if seq.lt(self.rcv_nxt) {
            let skip = self.rcv_nxt.since(seq) as usize;
            if skip >= seg.payload.len() {
                // Entirely old data (pure duplicate). FIN may still be new.
                &[]
            } else {
                &seg.payload[skip..]
            }
        } else if seq == self.rcv_nxt {
            &seg.payload[..]
        } else {
            // Out-of-order: dup-ACK and drop (no reassembly by design).
            out.seg(self.pure_ack());
            return;
        };
        let mut advanced = false;
        if !payload.is_empty() {
            let accepted = self.rcv_buf.push(payload);
            if accepted > 0 {
                self.rcv_nxt += accepted as u32;
                advanced = true;
                out.ev(LocalEvent::DataReady);
            }
        }
        // In-order FIN (its sequence slot is right at rcv_nxt).
        if has_fin
            && (payload_end == self.rcv_nxt || (seg.payload.is_empty() && seq == self.rcv_nxt))
        {
            self.rcv_nxt += 1;
            out.ev(LocalEvent::PeerClosed);
            match self.state {
                TcpState::Established => self.state = TcpState::CloseWait,
                TcpState::FinWait1 => {
                    // Did they also ack our FIN? on_ack handled state; if we
                    // are still FinWait1 the FINs crossed.
                    self.state = TcpState::Closing;
                }
                TcpState::FinWait2 => {
                    self.enter_time_wait(now);
                    out.ev(LocalEvent::Closed);
                }
                _ => {}
            }
            // FIN is acknowledged immediately regardless of delayed-ACK.
            out.seg(self.pure_ack());
            return;
        }
        if advanced {
            match self.cfg.delayed_ack {
                None => out.seg(self.pure_ack()),
                Some(d) => {
                    if self.ack_pending {
                        // Second in-order segment: ack now (RFC 1122).
                        out.seg(self.pure_ack());
                    } else {
                        self.ack_pending = true;
                        self.ack_deadline = Some(now + d);
                    }
                }
            }
        } else if !seg.payload.is_empty() || has_fin {
            // Nothing advanced but the segment carried bytes: a duplicate,
            // a retransmitted FIN, or a zero-window probe the full buffer
            // rejected. Re-ACK so the peer learns our current state and
            // window.
            out.seg(self.pure_ack());
        }
    }

    fn enter_time_wait(&mut self, now: SimTime) {
        self.state = TcpState::TimeWait;
        self.rto_deadline = None;
        self.time_wait_deadline = Some(now + self.cfg.time_wait);
    }

    fn fin_acked(&self) -> FinAckState {
        match self.fin_seq {
            None => FinAckState::NoFin,
            Some(s) => {
                if self.snd_una.gt(s) {
                    FinAckState::Acked
                } else {
                    FinAckState::Outstanding
                }
            }
        }
    }

    fn take_rtt_sample(&mut self, now: SimTime, ack: SeqNum) {
        if let Some((need, sent_at)) = self.rtt_sample {
            if ack.ge(need) {
                let sample_ns = now.saturating_since(sent_at).as_nanos() as f64;
                match self.srtt_ns {
                    None => {
                        self.srtt_ns = Some(sample_ns);
                        self.rttvar_ns = sample_ns / 2.0;
                    }
                    Some(srtt) => {
                        let err = (sample_ns - srtt).abs();
                        self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * err;
                        self.srtt_ns = Some(0.875 * srtt + 0.125 * sample_ns);
                    }
                }
                let srtt = self.srtt_ns.unwrap();
                let rto_ns = srtt + (4.0 * self.rttvar_ns).max(1e6);
                let rto = SimDuration::from_nanos(rto_ns as u64)
                    .max(self.cfg.rto_min)
                    .min(self.cfg.rto_max);
                self.rto = rto;
                self.rtt_sample = None;
            }
        }
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = Some(now + self.rto);
    }

    fn retransmit_head(&mut self) -> TcpSegment {
        self.retransmissions += 1;
        self.rtt_sample = None; // Karn's algorithm
        match self.state {
            TcpState::SynSent => {
                let mut seg = self.base_segment(TcpFlags::SYN, self.iss, Bytes::new());
                seg.mss = Some(self.cfg.mss);
                seg
            }
            TcpState::SynReceived => {
                let mut seg =
                    self.base_segment(TcpFlags::SYN | TcpFlags::ACK, self.iss, Bytes::new());
                seg.mss = Some(self.cfg.mss);
                seg
            }
            _ => {
                // Oldest unacknowledged data, or the FIN.
                let una = self.snd_una;
                if Some(una) == self.fin_seq {
                    self.base_segment(TcpFlags::FIN | TcpFlags::ACK, una, Bytes::new())
                } else if self.inflight() == 0 && self.snd_buf.end().since(self.snd_nxt) > 0 {
                    // Zero-window probe: push one byte past the window
                    // (RFC 1122 persist behaviour). The peer won't accept
                    // it, but its ACK carries the current window.
                    let payload = self.snd_buf.peek(self.snd_nxt, 1);
                    let seg =
                        self.base_segment(TcpFlags::ACK | TcpFlags::PSH, self.snd_nxt, payload);
                    self.snd_nxt += 1;
                    seg
                } else {
                    let len = self
                        .snd_nxt
                        .since(una)
                        .min(self.effective_mss())
                        .min(self.snd_buf.end().since(una));
                    let payload = self.snd_buf.peek(una, len as usize);
                    let mut flags = TcpFlags::ACK | TcpFlags::PSH;
                    // FIN piggybacks if the retransmitted chunk reaches it.
                    if self.fin_seq == Some(una + len) {
                        flags = flags | TcpFlags::FIN;
                    }
                    self.base_segment(flags, una, payload)
                }
            }
        }
    }

    /// Poll timers (RTO, delayed ACK, TIME-WAIT). Call whenever
    /// [`TcpSocket::next_deadline`] expires.
    pub fn on_timers(&mut self, now: SimTime) -> SocketOutput {
        let mut out = SocketOutput::default();
        if let Some(dl) = self.time_wait_deadline {
            if now >= dl {
                self.time_wait_deadline = None;
                self.state = TcpState::Closed;
                out.ev(LocalEvent::Closed);
            }
        }
        if let Some(dl) = self.ack_deadline {
            if now >= dl && self.ack_pending {
                out.seg(self.pure_ack());
            }
        }
        if let Some(dl) = self.rto_deadline {
            if now >= dl {
                if self.retries >= self.cfg.max_retries {
                    self.state = TcpState::Closed;
                    self.rto_deadline = None;
                    out.ev(LocalEvent::Reset);
                    return out;
                }
                self.retries += 1;
                // Collapse the congestion window (Reno on timeout).
                let mss = self.effective_mss();
                self.ssthresh = (self.inflight() / 2).max(2 * mss);
                self.cwnd = mss;
                let seg = self.retransmit_head();
                out.seg(seg);
                // Report the RTO wait for data retransmissions so the
                // tracing layer can attribute it. `dl` was armed at
                // `send_time + rto` with the current (pre-doubling)
                // rto, so `dl - rto` recovers the send time. SYN waits
                // stay inside the handshake span (see `SocketOutput`).
                if !matches!(self.state, TcpState::SynSent | TcpState::SynReceived) {
                    let start =
                        SimTime::from_nanos(dl.as_nanos().saturating_sub(self.rto.as_nanos()));
                    out.retrans = Some((start, now));
                }
                self.rto = self.rto.saturating_mul(2).min(self.cfg.rto_max);
                self.arm_rto(now);
            }
        }
        out
    }

    /// Earliest pending timer deadline, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        [
            self.rto_deadline,
            self.ack_deadline,
            self.time_wait_deadline,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Smoothed RTT estimate, if one has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt_ns.map(|ns| SimDuration::from_nanos(ns as u64))
    }

    /// Current congestion window in bytes (diagnostics).
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }
}

#[derive(PartialEq, Eq)]
enum FinAckState {
    NoFin,
    Outstanding,
    Acked,
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn pair() -> (TcpSocket, TcpSocket) {
        let client = TcpSocket::new(
            (CLIENT_IP, 50000),
            (SERVER_IP, 80),
            SeqNum(1000),
            TcpConfig::default(),
        );
        let server = TcpSocket::new(
            (SERVER_IP, 80),
            (CLIENT_IP, 50000),
            SeqNum(9000),
            TcpConfig::default(),
        );
        (client, server)
    }

    /// Shuttle segments between two sockets until both are quiet.
    /// Returns all events seen as (who, event).
    fn converge(
        now: SimTime,
        client: &mut TcpSocket,
        server: &mut TcpSocket,
        mut to_server: Vec<TcpSegment>,
    ) -> Vec<(&'static str, LocalEvent)> {
        let mut events = Vec::new();
        let mut to_client: Vec<TcpSegment> = Vec::new();
        for _ in 0..64 {
            if to_server.is_empty() && to_client.is_empty() {
                break;
            }
            let mut next_to_client = Vec::new();
            for seg in to_server.drain(..) {
                let out = server.on_segment(now, &seg);
                next_to_client.extend(out.segments);
                events.extend(out.events.into_iter().map(|e| ("server", e)));
            }
            let mut next_to_server = Vec::new();
            for seg in to_client.drain(..) {
                let out = client.on_segment(now, &seg);
                next_to_server.extend(out.segments);
                events.extend(out.events.into_iter().map(|e| ("client", e)));
            }
            to_client = next_to_client;
            to_server = next_to_server;
        }
        events
    }

    fn establish(client: &mut TcpSocket, server: &mut TcpSocket) {
        let now = SimTime::ZERO;
        let syn = client.connect(now).segments.remove(0);
        let synack = server.accept_syn(now, &syn).segments.remove(0);
        let out = client.on_segment(now, &synack);
        assert!(out.events.contains(&LocalEvent::Connected));
        let ack = &out.segments[0];
        let out2 = server.on_segment(now, ack);
        assert!(out2.events.contains(&LocalEvent::Accepted));
        assert_eq!(client.state, TcpState::Established);
        assert_eq!(server.state, TcpState::Established);
    }

    #[test]
    fn three_way_handshake() {
        let (mut c, mut s) = pair();
        establish(&mut c, &mut s);
    }

    #[test]
    fn syn_carries_mss() {
        let (mut c, _) = pair();
        let syn = c.connect(SimTime::ZERO).segments.remove(0);
        assert!(syn.flags.contains(TcpFlags::SYN));
        assert_eq!(syn.mss, Some(1460));
    }

    #[test]
    fn small_data_roundtrip() {
        let (mut c, mut s) = pair();
        establish(&mut c, &mut s);
        let now = SimTime::from_millis(1);
        assert_eq!(c.send(b"GET / HTTP/1.1\r\n\r\n"), 18);
        let segs = c.pump(now).segments;
        assert_eq!(segs.len(), 1);
        assert!(segs[0].flags.contains(TcpFlags::PSH));
        let events = converge(now, &mut c, &mut s, segs);
        assert!(events.contains(&("server", LocalEvent::DataReady)));
        assert_eq!(&s.recv()[..], b"GET / HTTP/1.1\r\n\r\n");
        // Client's buffer fully acknowledged.
        assert_eq!(c.inflight(), 0);
        assert!(c.next_deadline().is_none());
    }

    #[test]
    fn large_send_segments_by_mss() {
        let (mut c, mut s) = pair();
        establish(&mut c, &mut s);
        let now = SimTime::from_millis(1);
        let data = vec![0xABu8; 5000];
        assert_eq!(c.send(&data), 5000);
        let segs = c.pump(now).segments;
        assert_eq!(segs.len(), 4); // 1460*3 + 620
        assert!(segs[..3].iter().all(|s| s.payload.len() == 1460));
        assert_eq!(segs[3].payload.len(), 5000 - 3 * 1460);
        assert!(segs[3].flags.contains(TcpFlags::PSH));
        converge(now, &mut c, &mut s, segs);
        assert_eq!(s.recv().len(), 5000);
    }

    #[test]
    fn send_respects_peer_window() {
        let cfg = TcpConfig {
            recv_buf: 2000,
            ..TcpConfig::default()
        };
        let mut c = TcpSocket::new(
            (CLIENT_IP, 1),
            (SERVER_IP, 2),
            SeqNum(0),
            TcpConfig::default(),
        );
        let mut s = TcpSocket::new((SERVER_IP, 2), (CLIENT_IP, 1), SeqNum(0), cfg);
        establish(&mut c, &mut s);
        let now = SimTime::from_millis(1);
        c.send(&vec![1u8; 6000]);
        let segs = c.pump(now).segments;
        let sent: usize = segs.iter().map(|s| s.payload.len()).sum();
        assert!(sent <= 2000, "sent {sent} > advertised window");
        // After the server acks and the app reads, more flows.
        converge(now, &mut c, &mut s, segs);
        s.recv();
        // Window update would come via the next ACK exchange; direct pump
        // after an ack with a bigger window:
        let more = c.pump(now).segments;
        let _ = more;
    }

    #[test]
    fn orderly_close_both_sides() {
        let (mut c, mut s) = pair();
        establish(&mut c, &mut s);
        let now = SimTime::from_millis(2);
        c.close();
        let fin = c.pump(now).segments;
        assert_eq!(fin.len(), 1);
        assert!(fin[0].flags.contains(TcpFlags::FIN));
        assert_eq!(c.state, TcpState::FinWait1);
        let events = converge(now, &mut c, &mut s, fin);
        assert!(events.contains(&("server", LocalEvent::PeerClosed)));
        assert_eq!(s.state, TcpState::CloseWait);
        assert_eq!(c.state, TcpState::FinWait2);
        // Server closes too.
        s.close();
        let fin2 = s.pump(now).segments;
        assert_eq!(s.state, TcpState::LastAck);
        // Deliver server FIN to client, client acks, server closes.
        let mut evs = Vec::new();
        let out = c.on_segment(now, &fin2[0]);
        evs.extend(out.events);
        assert_eq!(c.state, TcpState::TimeWait);
        let out2 = s.on_segment(now, &out.segments[0]);
        assert!(out2.events.contains(&LocalEvent::Closed));
        assert_eq!(s.state, TcpState::Closed);
        // Client leaves TIME-WAIT via its timer.
        let later = now + SimDuration::from_secs(11);
        let out3 = c.on_timers(later);
        assert!(out3.events.contains(&LocalEvent::Closed));
        assert!(c.is_closed());
        assert!(evs.contains(&LocalEvent::PeerClosed));
    }

    #[test]
    fn rst_resets_connection() {
        let (mut c, mut s) = pair();
        establish(&mut c, &mut s);
        let rst = s.abort().segments.remove(0);
        assert!(rst.flags.contains(TcpFlags::RST));
        let out = c.on_segment(SimTime::from_millis(3), &rst);
        assert!(out.events.contains(&LocalEvent::Reset));
        assert!(c.is_closed());
    }

    #[test]
    fn lost_data_segment_is_retransmitted() {
        let (mut c, mut s) = pair();
        establish(&mut c, &mut s);
        let now = SimTime::from_millis(1);
        c.send(b"probe");
        let segs = c.pump(now).segments;
        assert_eq!(segs.len(), 1);
        // Segment lost: nothing delivered. RTO fires.
        let deadline = c.next_deadline().expect("rto armed");
        let out = c.on_timers(deadline);
        assert_eq!(out.segments.len(), 1);
        assert_eq!(&out.segments[0].payload[..], b"probe");
        assert_eq!(c.retransmissions, 1);
        // Deliver the retransmission; everything completes.
        converge(deadline, &mut c, &mut s, out.segments);
        assert_eq!(&s.recv()[..], b"probe");
        assert_eq!(c.inflight(), 0);
    }

    #[test]
    fn rto_backoff_doubles_and_gives_up() {
        let (mut c, _s) = pair();
        let mut now = SimTime::ZERO;
        c.connect(now);
        let mut gaps = Vec::new();
        let mut last = now;
        for _ in 0..9 {
            let dl = match c.next_deadline() {
                Some(d) => d,
                None => break,
            };
            now = dl;
            let out = c.on_timers(now);
            gaps.push(now.saturating_since(last).as_millis());
            last = now;
            if out.events.contains(&LocalEvent::Reset) {
                break;
            }
        }
        assert!(c.is_closed(), "socket should give up after max retries");
        // Exponential growth of retry gaps (1s, 2s, 4s... capped).
        assert!(gaps.windows(2).take(4).all(|w| w[1] >= w[0] * 2 - 1));
    }

    #[test]
    fn duplicate_data_is_reacked_not_redelivered() {
        let (mut c, mut s) = pair();
        establish(&mut c, &mut s);
        let now = SimTime::from_millis(1);
        c.send(b"hello");
        let seg = c.pump(now).segments.remove(0);
        let out1 = s.on_segment(now, &seg);
        assert_eq!(out1.events, vec![LocalEvent::DataReady]);
        assert_eq!(&s.recv()[..], b"hello");
        // Duplicate arrives (e.g. spurious retransmission).
        let out2 = s.on_segment(now, &seg);
        assert!(out2.events.is_empty());
        assert_eq!(out2.segments.len(), 1, "must re-ACK");
        assert!(s.recv().is_empty());
    }

    #[test]
    fn out_of_order_segment_triggers_dup_ack_and_recovery() {
        let (mut c, mut s) = pair();
        establish(&mut c, &mut s);
        let now = SimTime::from_millis(1);
        c.send(&vec![7u8; 3000]);
        let segs = c.pump(now).segments;
        assert_eq!(segs.len(), 3);
        // Deliver segment 1 (skip 0): dup-ACK, no data surfaced.
        let out = s.on_segment(now, &segs[1]);
        assert!(out.events.is_empty());
        assert_eq!(out.segments.len(), 1);
        assert_eq!(SeqNum(out.segments[0].ack), SeqNum(segs[0].seq));
        // RTO on the client recovers the full stream.
        let dl = c.next_deadline().unwrap();
        let rtx = c.on_timers(dl);
        let events = converge(dl, &mut c, &mut s, rtx.segments);
        assert!(events
            .iter()
            .any(|(w, e)| *w == "server" && *e == LocalEvent::DataReady));
        // All 3000 bytes eventually arrive exactly once.
        let mut total = s.recv().len();
        for _ in 0..10 {
            let dl = match c.next_deadline() {
                Some(d) => d,
                None => break,
            };
            let rtx = c.on_timers(dl);
            converge(dl, &mut c, &mut s, rtx.segments);
            total += s.recv().len();
        }
        assert_eq!(total, 3000);
    }

    #[test]
    fn nagle_holds_small_second_write() {
        let cfg = TcpConfig {
            nagle: true,
            ..TcpConfig::default()
        };
        let mut c = TcpSocket::new((CLIENT_IP, 1), (SERVER_IP, 2), SeqNum(0), cfg);
        let mut s = TcpSocket::new(
            (SERVER_IP, 2),
            (CLIENT_IP, 1),
            SeqNum(0),
            TcpConfig::default(),
        );
        establish(&mut c, &mut s);
        let now = SimTime::from_millis(1);
        c.send(b"first");
        let segs = c.pump(now).segments;
        assert_eq!(segs.len(), 1);
        // Second small write while the first is unacked: held back.
        c.send(b"second");
        assert!(c.pump(now).segments.is_empty());
        // Once the ACK returns, the held data flows.
        let out = s.on_segment(now, &segs[0]);
        let out2 = c.on_segment(now, &out.segments[0]);
        assert_eq!(out2.segments.len(), 1);
        assert_eq!(&out2.segments[0].payload[..], b"second");
    }

    #[test]
    fn delayed_ack_coalesces() {
        let cfg = TcpConfig {
            delayed_ack: Some(SimDuration::from_millis(40)),
            ..TcpConfig::default()
        };
        let mut c = TcpSocket::new(
            (CLIENT_IP, 1),
            (SERVER_IP, 2),
            SeqNum(0),
            TcpConfig::default(),
        );
        let mut s = TcpSocket::new((SERVER_IP, 2), (CLIENT_IP, 1), SeqNum(0), cfg);
        establish(&mut c, &mut s);
        let now = SimTime::from_millis(1);
        c.send(b"one");
        let seg = c.pump(now).segments.remove(0);
        let out = s.on_segment(now, &seg);
        assert!(out.segments.is_empty(), "first segment's ACK is delayed");
        assert_eq!(s.next_deadline(), Some(now + SimDuration::from_millis(40)));
        // Timer expiry produces the ACK.
        let out2 = s.on_timers(now + SimDuration::from_millis(40));
        assert_eq!(out2.segments.len(), 1);
        assert!(out2.segments[0].flags.contains(TcpFlags::ACK));
    }

    #[test]
    fn delayed_ack_second_segment_acks_immediately() {
        let cfg = TcpConfig {
            delayed_ack: Some(SimDuration::from_millis(40)),
            ..TcpConfig::default()
        };
        let mut c = TcpSocket::new(
            (CLIENT_IP, 1),
            (SERVER_IP, 2),
            SeqNum(0),
            TcpConfig::default(),
        );
        let mut s = TcpSocket::new((SERVER_IP, 2), (CLIENT_IP, 1), SeqNum(0), cfg);
        establish(&mut c, &mut s);
        let now = SimTime::from_millis(1);
        c.send(&vec![1u8; 2920]); // two full segments
        let segs = c.pump(now).segments;
        assert_eq!(segs.len(), 2);
        assert!(s.on_segment(now, &segs[0]).segments.is_empty());
        let out = s.on_segment(now, &segs[1]);
        assert_eq!(out.segments.len(), 1, "second segment forces the ACK");
    }

    #[test]
    fn rtt_sample_updates_srtt() {
        let (mut c, mut s) = pair();
        let t0 = SimTime::ZERO;
        let syn = c.connect(t0).segments.remove(0);
        let synack = s.accept_syn(t0, &syn).segments.remove(0);
        // SYN-ACK arrives 100 ms later.
        let t1 = SimTime::from_millis(100);
        c.on_segment(t1, &synack);
        let srtt = c.srtt().expect("sample taken");
        assert_eq!(srtt.as_millis(), 100);
    }

    #[test]
    fn send_after_close_rejected() {
        let (mut c, mut s) = pair();
        establish(&mut c, &mut s);
        c.close();
        assert_eq!(c.send(b"late"), 0);
    }

    #[test]
    fn close_before_established_sends_fin_after_handshake() {
        let (mut c, mut s) = pair();
        let now = SimTime::ZERO;
        let syn = c.connect(now).segments.remove(0);
        c.send(b"data");
        c.close();
        let synack = s.accept_syn(now, &syn).segments.remove(0);
        let out = c.on_segment(now, &synack);
        // ACK + data (+FIN possibly separate)
        let all: Vec<&TcpSegment> = out.segments.iter().collect();
        assert!(all.iter().any(|s| !s.payload.is_empty()));
        assert!(all.iter().any(|s| s.flags.contains(TcpFlags::FIN)));
    }

    #[test]
    fn stray_segment_to_closed_socket_gets_rst() {
        let mut c = TcpSocket::new(
            (CLIENT_IP, 1),
            (SERVER_IP, 2),
            SeqNum(0),
            TcpConfig::default(),
        );
        let seg = TcpSegment {
            src_port: 2,
            dst_port: 1,
            seq: 55,
            ack: 77,
            flags: TcpFlags::ACK,
            window: 100,
            mss: None,
            payload: Bytes::from_static(b"ghost"),
        };
        let out = c.on_segment(SimTime::ZERO, &seg);
        assert_eq!(out.segments.len(), 1);
        assert!(out.segments[0].flags.contains(TcpFlags::RST));
    }
}
