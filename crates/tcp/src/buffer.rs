//! Send-side retransmission buffer and receive-side in-order buffer.

use std::collections::VecDeque;

use bytes::Bytes;

use crate::seq::SeqNum;

/// Send buffer: bytes the application has written that are not yet
/// acknowledged. Tracks the boundary between in-flight and unsent data via
/// sequence numbers owned by the socket.
#[derive(Debug, Default)]
pub struct SendBuffer {
    /// Sequence number of the first byte in `data`.
    base: SeqNum,
    data: VecDeque<u8>,
    /// Maximum bytes the buffer accepts (back-pressure to the app).
    capacity: usize,
}

impl SendBuffer {
    /// A buffer holding at most `capacity` unacknowledged bytes.
    pub fn new(base: SeqNum, capacity: usize) -> Self {
        SendBuffer {
            base,
            data: VecDeque::new(),
            capacity,
        }
    }

    /// Bytes currently buffered (in-flight + unsent).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Free space for new application writes.
    pub fn free(&self) -> usize {
        self.capacity - self.data.len()
    }

    /// Append application data; returns how many bytes were accepted.
    pub fn write(&mut self, bytes: &[u8]) -> usize {
        let take = bytes.len().min(self.free());
        self.data.extend(&bytes[..take]);
        take
    }

    /// Copy out up to `len` bytes starting at absolute sequence `seq`
    /// (used both for first transmission and retransmission).
    ///
    /// Returns an empty payload if `seq` is outside the buffered range.
    pub fn peek(&self, seq: SeqNum, len: usize) -> Bytes {
        let offset = seq.since(self.base) as usize;
        if offset >= self.data.len() || len == 0 {
            return Bytes::new();
        }
        let take = len.min(self.data.len() - offset);
        let mut out = Vec::with_capacity(take);
        out.extend(self.data.iter().skip(offset).take(take));
        Bytes::from(out)
    }

    /// Acknowledge everything below `ack`: drop it from the buffer.
    pub fn ack_to(&mut self, ack: SeqNum) {
        if ack.le(self.base) {
            return;
        }
        let n = (ack.since(self.base) as usize).min(self.data.len());
        self.data.drain(..n);
        self.base += n as u32;
    }

    /// First sequence number still buffered.
    pub fn base(&self) -> SeqNum {
        self.base
    }

    /// One-past-the-last buffered sequence number.
    pub fn end(&self) -> SeqNum {
        self.base + self.data.len() as u32
    }
}

/// Receive buffer: strictly in-order bytes the application has not read
/// yet. Out-of-order segments are rejected by the socket (duplicate-ACK),
/// so this buffer only ever appends at the tail.
#[derive(Debug, Default)]
pub struct RecvBuffer {
    data: VecDeque<u8>,
    capacity: usize,
}

impl RecvBuffer {
    /// A buffer advertising at most `capacity` bytes of window.
    pub fn new(capacity: usize) -> Self {
        RecvBuffer {
            data: VecDeque::new(),
            capacity,
        }
    }

    /// Unread bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing is waiting to be read.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Window to advertise: remaining capacity, clamped to u16 (no window
    /// scaling).
    pub fn window(&self) -> u16 {
        (self.capacity - self.data.len()).min(u16::MAX as usize) as u16
    }

    /// Accept in-order payload; returns bytes accepted (may be short if
    /// the window was overrun).
    pub fn push(&mut self, payload: &[u8]) -> usize {
        let take = payload.len().min(self.capacity - self.data.len());
        self.data.extend(&payload[..take]);
        take
    }

    /// Drain up to `max` bytes for the application.
    pub fn read(&mut self, max: usize) -> Bytes {
        let take = max.min(self.data.len());
        let out: Vec<u8> = self.data.drain(..take).collect();
        Bytes::from(out)
    }

    /// Drain everything.
    pub fn read_all(&mut self) -> Bytes {
        self.read(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_write_peek_ack_cycle() {
        let mut b = SendBuffer::new(SeqNum(100), 10);
        assert_eq!(b.write(b"hello"), 5);
        assert_eq!(b.write(b"world!!"), 5); // capacity caps at 10
        assert_eq!(b.len(), 10);
        assert_eq!(b.free(), 0);
        assert_eq!(&b.peek(SeqNum(100), 5)[..], b"hello");
        assert_eq!(&b.peek(SeqNum(105), 5)[..], b"world");
        // Partial ack releases space.
        b.ack_to(SeqNum(103));
        assert_eq!(b.base(), SeqNum(103));
        assert_eq!(b.free(), 3);
        assert_eq!(&b.peek(SeqNum(103), 3)[..], b"low");
        // Stale (old) ack is a no-op.
        b.ack_to(SeqNum(50));
        assert_eq!(b.base(), SeqNum(103));
        // Ack beyond end clamps.
        b.ack_to(SeqNum(900));
        assert!(b.is_empty());
    }

    #[test]
    fn send_peek_out_of_range_is_empty() {
        let mut b = SendBuffer::new(SeqNum(0), 100);
        b.write(b"abc");
        assert!(b.peek(SeqNum(3), 4).is_empty());
        assert!(b.peek(SeqNum(0), 0).is_empty());
        assert_eq!(b.end(), SeqNum(3));
    }

    #[test]
    fn send_retransmission_peek_is_stable() {
        let mut b = SendBuffer::new(SeqNum(0), 100);
        b.write(b"retransmit me");
        let first = b.peek(SeqNum(0), 13);
        let again = b.peek(SeqNum(0), 13);
        assert_eq!(first, again);
    }

    #[test]
    fn recv_push_read_window() {
        let mut r = RecvBuffer::new(8);
        assert_eq!(r.window(), 8);
        assert_eq!(r.push(b"abcdef"), 6);
        assert_eq!(r.window(), 2);
        assert_eq!(r.push(b"ghij"), 2); // overrun truncated
        assert_eq!(r.window(), 0);
        assert_eq!(&r.read(4)[..], b"abcd");
        assert_eq!(r.window(), 4);
        assert_eq!(&r.read_all()[..], b"efgh");
        assert!(r.is_empty());
    }

    #[test]
    fn recv_window_clamps_to_u16() {
        let r = RecvBuffer::new(1 << 20);
        assert_eq!(r.window(), u16::MAX);
    }

    #[test]
    fn send_wrapping_sequence_space() {
        let start = SeqNum(u32::MAX - 2);
        let mut b = SendBuffer::new(start, 16);
        b.write(b"abcdef");
        assert_eq!(&b.peek(start + 3, 3)[..], b"def");
        b.ack_to(start + 4);
        assert_eq!(b.base(), SeqNum(1));
        assert_eq!(&b.peek(SeqNum(1), 2)[..], b"ef");
    }
}
