//! A host: NIC ⇄ IPv4 ⇄ TCP/UDP ⇄ application.
//!
//! [`Host`] implements [`bnm_sim::engine::Node`] and owns the transport
//! stacks plus an application object implementing [`HostApp`]. All
//! timestamping semantics of the reproduction hinge on *where* code runs:
//! the capture taps sit on the host's link (below this struct), while
//! browser-level timestamps are taken inside the application layer — so
//! every delay modeled in the application (event loops, plugin bridges,
//! server handler delays) lands in Δd exactly as in the paper.
//!
//! The host itself adds **no** processing delay: protocol handling is
//! instantaneous in virtual time. All overhead modelling is concentrated
//! in the application layer where it is explicit and auditable.

use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use bytes::Bytes;

use bnm_sim::engine::{Ctx, Node, PortNo};
use bnm_sim::time::{SimDuration, SimTime};
use bnm_sim::wire::{
    EtherType, EthernetFrame, IcmpEcho, IpProtocol, Ipv4Packet, MacAddr, ParsedPacket, Transport,
};

use crate::socket::{SocketId, TcpConfig};
use crate::stack::{SockEvent, TcpStack};
use crate::udp::UdpStack;

/// Engine-timer token reserved for the stack's internal deadlines. App
/// timers must stay below this value.
const STACK_TIMER: u64 = u64::MAX;

/// Static configuration of one host.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Host name (diagnostics).
    pub name: String,
    /// NIC MAC address.
    pub mac: MacAddr,
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// Static neighbor table (no ARP, like `ip neigh add` provisioning).
    pub neighbors: Vec<(Ipv4Addr, MacAddr)>,
    /// Default TCP socket configuration.
    pub tcp: TcpConfig,
}

impl HostConfig {
    /// A host with an empty neighbor table.
    pub fn new(name: impl Into<String>, mac: MacAddr, ip: Ipv4Addr) -> Self {
        HostConfig {
            name: name.into(),
            mac,
            ip,
            neighbors: Vec::new(),
            tcp: TcpConfig::default(),
        }
    }

    /// Add a static neighbor entry.
    pub fn with_neighbor(mut self, ip: Ipv4Addr, mac: MacAddr) -> Self {
        self.neighbors.push((ip, mac));
        self
    }

    /// Override the TCP config.
    pub fn with_tcp(mut self, tcp: TcpConfig) -> Self {
        self.tcp = tcp;
        self
    }
}

/// The application living on a host.
pub trait HostApp: 'static {
    /// Called once at simulation boot.
    fn on_boot(&mut self, _ctx: &mut HostCtx) {}

    /// A TCP socket event occurred.
    fn on_event(&mut self, ctx: &mut HostCtx, ev: SockEvent);

    /// A UDP datagram arrived on a bound port.
    fn on_udp(&mut self, _ctx: &mut HostCtx, _rx: crate::udp::UdpRx) {}

    /// An application timer armed via [`HostCtx::set_app_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut HostCtx, _token: u64) {}

    /// An ICMP echo *reply* arrived (requests are answered by the host's
    /// "kernel" automatically, like a real stack).
    fn on_ping_reply(&mut self, _ctx: &mut HostCtx, _from: Ipv4Addr, _echo: IcmpEcho) {}
}

/// The application's handle to its host while inside a callback.
pub struct HostCtx<'a, 'b> {
    sim: &'a mut Ctx<'b>,
    /// TCP layer (exposed for advanced use; prefer the wrapper methods).
    pub tcp: &'a mut TcpStack,
    /// UDP layer.
    pub udp: &'a mut UdpStack,
    cfg: &'a HostConfig,
    ip_ident: &'a mut u16,
    neighbor_cache: &'a HashMap<Ipv4Addr, MacAddr>,
}

impl HostCtx<'_, '_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Host configuration.
    pub fn config(&self) -> &HostConfig {
        self.cfg
    }

    /// Open a TCP connection; segments leave immediately.
    pub fn connect(&mut self, peer: (Ipv4Addr, u16)) -> SocketId {
        let now = self.sim.now();
        let id = self.tcp.connect(now, peer);
        self.flush();
        id
    }

    /// Open a TCP connection with a per-socket config.
    pub fn connect_with(&mut self, peer: (Ipv4Addr, u16), cfg: TcpConfig) -> SocketId {
        let now = self.sim.now();
        let id = self.tcp.connect_with(now, peer, cfg);
        self.flush();
        id
    }

    /// Listen on a TCP port.
    pub fn listen(&mut self, port: u16) {
        self.tcp.listen(port);
    }

    /// Send on a TCP socket; returns bytes accepted.
    pub fn send(&mut self, sock: SocketId, data: &[u8]) -> usize {
        let now = self.sim.now();
        let n = self.tcp.send(now, sock, data);
        self.flush();
        n
    }

    /// Read everything available on a TCP socket (any resulting
    /// window-update ACK leaves immediately).
    pub fn recv(&mut self, sock: SocketId) -> Bytes {
        let data = self.tcp.recv(sock);
        self.flush();
        data
    }

    /// Begin an orderly close.
    pub fn close(&mut self, sock: SocketId) {
        let now = self.sim.now();
        self.tcp.close(now, sock);
        self.flush();
    }

    /// Abort with RST.
    pub fn abort(&mut self, sock: SocketId) {
        self.tcp.abort(sock);
        self.flush();
    }

    /// Bind a UDP port.
    pub fn udp_bind(&mut self, port: u16) -> bool {
        self.udp.bind(port)
    }

    /// Bind an ephemeral UDP port.
    pub fn udp_bind_ephemeral(&mut self) -> u16 {
        self.udp.bind_ephemeral()
    }

    /// Send a UDP datagram.
    pub fn udp_send(&mut self, from_port: u16, to: (Ipv4Addr, u16), payload: Bytes) {
        self.udp.send(from_port, to, payload);
        self.flush();
    }

    /// Arm an application timer. `token` must be below `u64::MAX`.
    pub fn set_app_timer(&mut self, delay: SimDuration, token: u64) {
        assert!(token < STACK_TIMER, "token reserved for the stack");
        self.sim.set_timer(delay, token);
    }

    /// Send an ICMP echo request (`ping`) to `dst`.
    pub fn send_ping(&mut self, dst: Ipv4Addr, ident: u16, seq: u16, payload: Bytes) {
        let echo = IcmpEcho {
            is_request: true,
            ident,
            seq,
            payload,
        };
        let frame = self.build_ip_frame(dst, IpProtocol::Icmp, echo.emit());
        self.sim.send_frame(0, frame);
    }

    /// Send an ICMP echo reply (used internally by the host "kernel").
    pub(crate) fn send_ping_reply(&mut self, dst: Ipv4Addr, echo: &IcmpEcho) {
        let frame = self.build_ip_frame(dst, IpProtocol::Icmp, echo.reply().emit());
        self.sim.send_frame(0, frame);
    }

    /// Push everything the stacks queued onto the wire.
    fn flush(&mut self) {
        let src_ip = self.cfg.ip;
        for (dst_ip, seg) in self.tcp.take_out() {
            let payload = seg.emit(src_ip, dst_ip);
            let frame = self.build_ip_frame(dst_ip, IpProtocol::Tcp, payload);
            self.sim.send_frame(0, frame);
        }
        for (dst_ip, dgram) in self.udp.take_out() {
            let payload = dgram.emit(src_ip, dst_ip);
            let frame = self.build_ip_frame(dst_ip, IpProtocol::Udp, payload);
            self.sim.send_frame(0, frame);
        }
    }

    fn build_ip_frame(&mut self, dst_ip: Ipv4Addr, protocol: IpProtocol, payload: Bytes) -> Bytes {
        *self.ip_ident = self.ip_ident.wrapping_add(1);
        let ip = Ipv4Packet {
            src: self.cfg.ip,
            dst: dst_ip,
            protocol,
            ttl: 64,
            ident: *self.ip_ident,
            payload,
        };
        let dst_mac = self
            .neighbor_cache
            .get(&dst_ip)
            .copied()
            .unwrap_or(MacAddr::BROADCAST);
        EthernetFrame {
            dst: dst_mac,
            src: self.cfg.mac,
            ethertype: EtherType::Ipv4,
            payload: ip.emit(),
        }
        .emit()
    }
}

/// A host node: plugs a [`HostApp`] into the simulated network.
pub struct Host<A: HostApp> {
    cfg: HostConfig,
    tcp: TcpStack,
    udp: UdpStack,
    app: A,
    ip_ident: u16,
    neighbor_cache: HashMap<Ipv4Addr, MacAddr>,
    /// Frames that failed to parse or verify (diagnostics).
    pub rx_errors: u64,
}

impl<A: HostApp> Host<A> {
    /// Build a host around an application.
    pub fn new(cfg: HostConfig, app: A) -> Self {
        let tcp = TcpStack::new(cfg.ip, cfg.tcp);
        let udp = UdpStack::new(cfg.ip);
        let neighbor_cache = cfg.neighbors.iter().copied().collect();
        Host {
            cfg,
            tcp,
            udp,
            app,
            ip_ident: 0,
            neighbor_cache,
            rx_errors: 0,
        }
    }

    /// Install a trace handle on the host's TCP stack: active opens get
    /// `tcp/handshake` spans from SYN to `Connected`.
    pub fn with_trace(mut self, trace: bnm_obs::Trace) -> Self {
        self.tcp.set_trace(trace);
        self
    }

    /// Offset this host's ephemeral-port/ISN sequences by a flow index
    /// (see [`TcpStack::set_flow_offset`]); index 0 is a no-op.
    pub fn with_flow_offset(mut self, index: u64) -> Self {
        self.tcp.set_flow_offset(index);
        self
    }

    /// Borrow the application (to read results after a run).
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutably borrow the application (to configure before a run).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Borrow the TCP stack (diagnostics).
    pub fn tcp(&self) -> &TcpStack {
        &self.tcp
    }

    /// Run `f` with a [`HostCtx`], then deliver pending events and re-arm
    /// timers. This is the single entry point wrapping every callback.
    fn with_ctx<F>(&mut self, sim: &mut Ctx, f: F)
    where
        F: FnOnce(&mut A, &mut HostCtx),
    {
        {
            let mut hc = HostCtx {
                sim,
                tcp: &mut self.tcp,
                udp: &mut self.udp,
                cfg: &self.cfg,
                ip_ident: &mut self.ip_ident,
                neighbor_cache: &self.neighbor_cache,
            };
            f(&mut self.app, &mut hc);
            // Drain event/rx queues; app callbacks may enqueue more work,
            // so loop until quiescent (bounded to catch runaway apps).
            for _ in 0..4096 {
                if let Some(ev) = hc.tcp.pop_event() {
                    self.app.on_event(&mut hc, ev);
                    continue;
                }
                if let Some(rx) = hc.udp.pop_rx() {
                    self.app.on_udp(&mut hc, rx);
                    continue;
                }
                break;
            }
            hc.flush();
        }
        // Re-arm the stack timer for the earliest deadline.
        if let Some(dl) = self.tcp.next_deadline() {
            let now = sim.now();
            let delay = dl.saturating_since(now);
            sim.set_timer(delay, STACK_TIMER);
        }
    }
}

impl<A: HostApp> Node for Host<A> {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.with_ctx(ctx, |app, hc| app.on_boot(hc));
    }

    fn on_frame(&mut self, ctx: &mut Ctx, _port: PortNo, frame: Bytes) {
        let parsed = match ParsedPacket::parse(&frame) {
            Ok(p) => p,
            Err(_) => {
                self.rx_errors += 1;
                return;
            }
        };
        if parsed.ip.dst != self.cfg.ip {
            return; // flooded frame for someone else
        }
        let now = ctx.now();
        let src_ip = parsed.ip.src;
        match parsed.transport {
            Transport::Tcp(seg) => {
                self.tcp.process(now, src_ip, seg);
            }
            Transport::Udp(dgram) => {
                self.udp.process(src_ip, dgram);
            }
            Transport::Icmp(echo) => {
                if echo.is_request {
                    // The "kernel" answers pings without involving the app.
                    self.with_ctx(ctx, |_, hc| hc.send_ping_reply(src_ip, &echo));
                } else {
                    self.with_ctx(ctx, |app, hc| app.on_ping_reply(hc, src_ip, echo));
                }
                return;
            }
            Transport::Other(_) => {
                self.rx_errors += 1;
                return;
            }
        }
        // Deliver events with a no-op entry closure.
        self.with_ctx(ctx, |_, _| {});
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        if token == STACK_TIMER {
            let now = ctx.now();
            self.tcp.on_timers(now);
            self.with_ctx(ctx, |_, _| {});
        } else {
            self.with_ctx(ctx, |app, hc| app.on_timer(hc, token));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnm_sim::engine::Engine;
    use bnm_sim::link::LinkSpec;
    use bnm_sim::switch::Switch;

    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);
    const SERVER_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);
    const CLIENT_MAC: MacAddr = MacAddr::local(2);
    const SERVER_MAC: MacAddr = MacAddr::local(1);

    /// Client app: connects at boot, sends a probe, records the reply time.
    struct ProbeClient {
        sock: Option<SocketId>,
        sent_at: Option<SimTime>,
        reply_at: Option<SimTime>,
        reply: Vec<u8>,
    }

    impl HostApp for ProbeClient {
        fn on_boot(&mut self, ctx: &mut HostCtx) {
            self.sock = Some(ctx.connect((SERVER_IP, 80)));
        }
        fn on_event(&mut self, ctx: &mut HostCtx, ev: SockEvent) {
            match ev {
                SockEvent::Connected { sock } => {
                    self.sent_at = Some(ctx.now());
                    ctx.send(sock, b"ping");
                }
                SockEvent::Data { sock } => {
                    self.reply_at = Some(ctx.now());
                    self.reply.extend_from_slice(&ctx.recv(sock));
                    ctx.close(sock);
                }
                _ => {}
            }
        }
    }

    /// Server app: echoes data back with a fixed handler delay.
    struct EchoServer {
        delay: SimDuration,
        pending: Vec<(SocketId, Bytes)>,
    }

    impl HostApp for EchoServer {
        fn on_boot(&mut self, ctx: &mut HostCtx) {
            ctx.listen(80);
        }
        fn on_event(&mut self, ctx: &mut HostCtx, ev: SockEvent) {
            match ev {
                SockEvent::Data { sock } => {
                    let data = ctx.recv(sock);
                    self.pending.push((sock, data));
                    let token = (self.pending.len() - 1) as u64;
                    ctx.set_app_timer(self.delay, token);
                }
                SockEvent::PeerClosed { sock } => ctx.close(sock),
                _ => {}
            }
        }
        fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
            let (sock, data) = self.pending[token as usize].clone();
            ctx.send(sock, &data);
        }
    }

    fn testbed(handler_delay: SimDuration) -> (Engine, usize, usize) {
        let mut e = Engine::new();
        let client_cfg =
            HostConfig::new("client", CLIENT_MAC, CLIENT_IP).with_neighbor(SERVER_IP, SERVER_MAC);
        let server_cfg =
            HostConfig::new("server", SERVER_MAC, SERVER_IP).with_neighbor(CLIENT_IP, CLIENT_MAC);
        let client = e.add_node(Box::new(Host::new(
            client_cfg,
            ProbeClient {
                sock: None,
                sent_at: None,
                reply_at: None,
                reply: Vec::new(),
            },
        )));
        let server = e.add_node(Box::new(Host::new(
            server_cfg,
            EchoServer {
                delay: handler_delay,
                pending: Vec::new(),
            },
        )));
        let sw = e.add_node(Box::new(Switch::new(2)));
        e.connect(client, 0, sw, 0, LinkSpec::fast_ethernet());
        e.connect(server, 0, sw, 1, LinkSpec::fast_ethernet());
        (e, client, server)
    }

    #[test]
    fn end_to_end_echo_over_switch() {
        let (mut e, client, _) = testbed(SimDuration::ZERO);
        e.run();
        let app = e.node_ref::<Host<ProbeClient>>(client).app();
        assert_eq!(app.reply, b"ping");
        assert!(app.reply_at.is_some());
    }

    #[test]
    fn handler_delay_dominates_rtt() {
        let (mut e, client, _) = testbed(SimDuration::from_millis(50));
        e.run();
        let app = e.node_ref::<Host<ProbeClient>>(client).app();
        let rtt = app.reply_at.unwrap().saturating_since(app.sent_at.unwrap());
        assert!(rtt.as_millis() >= 50);
        assert!(rtt.as_millis() < 52);
    }

    #[test]
    fn rtt_without_delay_is_sub_millisecond() {
        let (mut e, client, _) = testbed(SimDuration::ZERO);
        e.run();
        let app = e.node_ref::<Host<ProbeClient>>(client).app();
        let rtt = app.reply_at.unwrap().saturating_since(app.sent_at.unwrap());
        // The paper: "the link RTT (< 1 ms) is too small to sample".
        assert!(rtt.as_millis_f64() < 1.0, "rtt = {rtt}");
    }

    #[test]
    fn connection_survives_syn_loss() {
        let (mut e, client, _) = testbed(SimDuration::ZERO);
        // Drop the first 1 frames from the client (the SYN).
        e.set_fault(
            0,
            client,
            bnm_sim::fault::FaultSpec {
                drop_chance: 0.35,
                ..bnm_sim::fault::FaultSpec::CLEAN
            },
            bnm_sim::rng::stream(77, "loss"),
        );
        e.run();
        let app = e.node_ref::<Host<ProbeClient>>(client).app();
        assert_eq!(app.reply, b"ping", "TCP must recover from loss");
    }

    #[test]
    fn corruption_is_survived_via_checksums_and_retransmit() {
        let (mut e, client, _) = testbed(SimDuration::ZERO);
        e.set_fault(
            1,
            2, // the switch end of the server link transmits toward server
            bnm_sim::fault::FaultSpec {
                corrupt_chance: 0.3,
                ..bnm_sim::fault::FaultSpec::CLEAN
            },
            bnm_sim::rng::stream(78, "corrupt"),
        );
        e.run();
        let app = e.node_ref::<Host<ProbeClient>>(client).app();
        assert_eq!(app.reply, b"ping");
    }

    #[test]
    fn udp_echo_between_hosts() {
        struct UdpClient {
            port: u16,
            got: Option<Bytes>,
        }
        impl HostApp for UdpClient {
            fn on_boot(&mut self, ctx: &mut HostCtx) {
                self.port = ctx.udp_bind_ephemeral();
                ctx.udp_send(self.port, (SERVER_IP, 7), Bytes::from_static(b"udp-ping"));
            }
            fn on_event(&mut self, _: &mut HostCtx, _: SockEvent) {}
            fn on_udp(&mut self, _ctx: &mut HostCtx, rx: crate::udp::UdpRx) {
                self.got = Some(rx.payload);
            }
        }
        struct UdpEcho;
        impl HostApp for UdpEcho {
            fn on_boot(&mut self, ctx: &mut HostCtx) {
                ctx.udp_bind(7);
            }
            fn on_event(&mut self, _: &mut HostCtx, _: SockEvent) {}
            fn on_udp(&mut self, ctx: &mut HostCtx, rx: crate::udp::UdpRx) {
                ctx.udp_send(rx.local_port, rx.from, rx.payload);
            }
        }
        let mut e = Engine::new();
        let c = e.add_node(Box::new(Host::new(
            HostConfig::new("c", CLIENT_MAC, CLIENT_IP).with_neighbor(SERVER_IP, SERVER_MAC),
            UdpClient { port: 0, got: None },
        )));
        let s = e.add_node(Box::new(Host::new(
            HostConfig::new("s", SERVER_MAC, SERVER_IP).with_neighbor(CLIENT_IP, CLIENT_MAC),
            UdpEcho,
        )));
        e.connect(c, 0, s, 0, LinkSpec::fast_ethernet());
        e.run();
        let app = e.node_ref::<Host<UdpClient>>(c).app();
        assert_eq!(app.got.as_deref(), Some(&b"udp-ping"[..]));
    }
}

#[cfg(test)]
mod icmp_tests {
    use super::*;
    use bnm_sim::engine::Engine;
    use bnm_sim::link::LinkSpec;
    use bnm_sim::time::SimTime;

    const A_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);
    const B_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);

    /// Sends a series of pings at boot; records reply times.
    struct Pinger {
        count: u16,
        replies: Vec<(u16, SimTime)>,
    }

    impl HostApp for Pinger {
        fn on_boot(&mut self, ctx: &mut HostCtx) {
            for seq in 0..self.count {
                ctx.send_ping(B_IP, 0x77, seq, Bytes::from_static(b"abcdefgh"));
            }
        }
        fn on_event(&mut self, _: &mut HostCtx, _: crate::stack::SockEvent) {}
        fn on_ping_reply(&mut self, ctx: &mut HostCtx, from: Ipv4Addr, echo: IcmpEcho) {
            assert_eq!(from, B_IP);
            assert_eq!(echo.ident, 0x77);
            assert_eq!(&echo.payload[..], b"abcdefgh");
            self.replies.push((echo.seq, ctx.now()));
        }
    }

    /// A host whose app never touches ICMP: the kernel must answer.
    struct Passive;
    impl HostApp for Passive {
        fn on_event(&mut self, _: &mut HostCtx, _: crate::stack::SockEvent) {}
    }

    #[test]
    fn kernel_answers_pings_and_replies_reach_the_app() {
        let mut e = Engine::new();
        let a = e.add_node(Box::new(Host::new(
            HostConfig::new("a", MacAddr::local(2), A_IP).with_neighbor(B_IP, MacAddr::local(1)),
            Pinger {
                count: 4,
                replies: Vec::new(),
            },
        )));
        let b = e.add_node(Box::new(Host::new(
            HostConfig::new("b", MacAddr::local(1), B_IP).with_neighbor(A_IP, MacAddr::local(2)),
            Passive,
        )));
        let link = e.connect(a, 0, b, 0, LinkSpec::fast_ethernet());
        e.set_one_way_delay(link, b, SimDuration::from_millis(50));
        e.run();
        let app = e.node_ref::<Host<Pinger>>(a).app();
        assert_eq!(app.replies.len(), 4);
        let seqs: Vec<u16> = app.replies.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        // Ping RTT ≈ the one-way 50 ms delay plus wire time.
        for (_, t) in &app.replies {
            assert!(t.as_millis_f64() > 50.0 && t.as_millis_f64() < 51.0);
        }
    }
}
