//! Tier-1 guarantees of the WebRTC datagram method:
//!
//! 1. **Wire-truth exactness** — the per-probe verdict counters
//!    (sent / delivered / lost-by-direction) agree *exactly* with the
//!    marker counts in the two capture taps, reproduced here by
//!    rebuilding the runner's testbed rep by rep.
//! 2. **Loss is a measurement, not an exclusion** — the measured loss
//!    rate tracks the injected frame-drop rate across a 0–5% sweep
//!    while `excluded_rounds` stays zero (nothing retransmits on an
//!    unreliable channel, so the §3.2 rule never fires).
//! 3. **Scheduler parity** — datagram cells are bit-identical between
//!    the serial and the work-stealing executor, datagram samples
//!    included.
//! 4. **Seed determinism** — same seed, same appraisal; different
//!    seed, different wire.
//! 5. **Attribution closure** — on delivered probes the traced Δd
//!    decomposition closes to < 1 µs.

#![deny(deprecated)]

use bnm::core::matching::{request_marker, ParsedCapture};
use bnm::core::testbed::{Testbed, TestbedConfig};
use bnm::prelude::*;
use bnm::sim::capture::CaptureDir;
use bnm::sim::rng;
use bnm::sim::time::SimDuration;
use bnm::timeapi::MachineTimer;

fn cell(reps: u32, seed: u64, loss: f64, trace: bool) -> ExperimentCell {
    let mut b = ExperimentCell::builder(
        MethodId::WebRtc,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(reps)
    .seed(seed);
    if loss > 0.0 {
        b = b.impairment(Impairment::loss(loss));
    }
    if trace {
        b = b.trace(true);
    }
    b.build().unwrap()
}

fn datagram_of(r: &bnm::core::runner::CellResult) -> &bnm::core::runner::DatagramSamples {
    r.sessions
        .iter()
        .find_map(|s| s.datagram.as_ref())
        .expect("webrtc cell yields datagram samples")
}

/// (1) Rebuild the runner's testbed for every rep (same derivations:
/// machine timeline at 4 s offsets, session seed xor rep, capture
/// seed), count the probe marker per direction in both taps, and
/// require the runner's verdict counters to match those wire-truth
/// counts *exactly* — no probe unaccounted for, none double-counted.
#[test]
fn per_probe_verdicts_match_wire_truth_exactly() {
    let reps = 6u32;
    let c = cell(reps, 0x3A11_0DD5, 0.08, false);
    let result = ExperimentRunner::try_run(&c).unwrap();
    assert_eq!(result.failures, 0);
    let d = datagram_of(&result);

    let machine_seed = rng::derive_seed(c.seed, &format!("machine.{}", c.label()));
    let session_seed = rng::derive_seed(c.seed, &format!("session.{}", c.label()));
    let plan = c.method.plan(c.timing_override);
    let (mut sent, mut delivered, mut lost_up, mut lost_down) = (0u64, 0u64, 0u64, 0u64);
    for rep in 0..reps {
        let machine = MachineTimer::new(c.os, machine_seed)
            .at_offset(SimDuration::from_secs(4).saturating_mul(u64::from(rep)));
        let cfg = TestbedConfig {
            server_delay: c.server_delay,
            capture_noise_ns: c.capture_noise_ns,
            seed: rng::derive_seed(c.seed, "capture"),
            impairment: c.impairment,
            ..TestbedConfig::default()
        };
        let profile = bnm::browser::BrowserProfile::build(BrowserKind::Chrome, c.os).unwrap();
        let mut tb = Testbed::build_traced(
            &cfg,
            plan.clone(),
            profile,
            machine,
            u64::from(rep),
            session_seed ^ u64::from(rep),
            Trace::disabled(),
        );
        tb.run();
        let client = ParsedCapture::parse(tb.engine.tap(tb.client_tap));
        let server = ParsedCapture::parse(tb.engine.tap(tb.server_tap));
        let token = u64::from(rep);
        for seq in 1..=MethodId::WEBRTC_TRAIN_LEN {
            let marker = request_marker(MethodId::WebRtc, seq, token);
            assert!(
                !client.hits(CaptureDir::Tx, &marker).is_empty(),
                "rep {rep} probe {seq} never left the client NIC"
            );
            sent += 1;
            if server.hits(CaptureDir::Rx, &marker).is_empty() {
                lost_up += 1;
            } else if client.hits(CaptureDir::Rx, &marker).is_empty() {
                lost_down += 1;
            } else {
                delivered += 1;
            }
        }
    }
    assert_eq!(d.sent, sent, "sent probes vs wire truth");
    assert_eq!(d.delivered, delivered, "delivered probes vs wire truth");
    assert_eq!(d.lost_upstream, lost_up, "upstream losses vs wire truth");
    assert_eq!(
        d.lost_downstream, lost_down,
        "downstream losses vs wire truth"
    );
    // The upstream OWD is measurable for every probe that reached the
    // server — including those whose echo then died downstream.
    assert_eq!(
        d.owd_up_ms.len() as u64,
        delivered + lost_down,
        "one upstream OWD per probe that reached the server"
    );
    assert_eq!(
        d.owd_down_ms.len() as u64,
        delivered,
        "one downstream OWD per delivered probe"
    );
}

/// (2) Measured loss tracks the injected frame-drop rate across the
/// 0–5% sweep, and no rounds are ever excluded: on an unreliable
/// channel a lost probe is a data point, not a retransmission to hide.
#[test]
fn measured_loss_tracks_the_injected_rate() {
    let reps = 40u32; // 640 probes, two loss coin-flips each
    let mut last = -1.0f64;
    for pct in [0.0f64, 1.0, 2.0, 5.0] {
        let c = cell(reps, 0xD06_F00D, pct / 100.0, false);
        let r = ExperimentRunner::try_run(&c).unwrap();
        assert_eq!(r.failures, 0, "loss must not fail reps");
        assert_eq!(r.excluded_rounds, 0, "datagram cells exclude nothing");
        let d = datagram_of(&r);
        assert_eq!(
            d.sent,
            u64::from(reps) * u64::from(MethodId::WEBRTC_TRAIN_LEN)
        );
        assert_eq!(
            d.delivered + d.lost_upstream + d.lost_downstream,
            d.sent,
            "every probe gets exactly one verdict"
        );
        let measured = d.loss_rate() * 100.0;
        if pct == 0.0 {
            assert_eq!(measured, 0.0, "clean network must measure zero loss");
        } else {
            // Each probe survives two independent drop chances (up and
            // down), so the expected end-to-end rate is 1-(1-p)^2 ≈ 2p;
            // allow generous binomial slack around it.
            let expected = (1.0 - (1.0 - pct / 100.0).powi(2)) * 100.0;
            assert!(
                (measured - expected).abs() < expected * 0.75 + 1.0,
                "{pct}% injected: measured {measured:.2}% vs expected {expected:.2}%"
            );
            assert!(
                measured > last,
                "loss must grow with the injected rate ({measured:.2}% after {last:.2}%)"
            );
        }
        last = measured;
    }
}

/// (3) Datagram cells keep the executor's bit-parity guarantee — the
/// per-probe appraisal included.
#[test]
fn webrtc_cells_are_bit_identical_across_schedulers() {
    let cells = vec![cell(8, 0xB32B_2013, 0.05, false)];
    let serial = Executor::serial().run(&cells);
    let parallel = Executor::with_workers(4).run(&cells);
    let (s, p) = (serial[0].as_ref().unwrap(), parallel[0].as_ref().unwrap());
    assert_eq!(s.measurements, p.measurements);
    assert_eq!(s.d1, p.d1);
    assert_eq!(s.d2, p.d2);
    assert_eq!(s.sessions.len(), p.sessions.len());
    for (ss, ps) in s.sessions.iter().zip(&p.sessions) {
        assert_eq!(ss.session, ps.session);
        assert_eq!(ss.datagram, ps.datagram, "session {} datagram", ss.session);
    }
}

/// (4) Same seed, same appraisal; a different seed rolls different
/// loss coins and lands different wire stamps.
#[test]
fn seed_determines_the_appraisal() {
    let a = ExperimentRunner::try_run(&cell(6, 7, 0.05, false)).unwrap();
    let b = ExperimentRunner::try_run(&cell(6, 7, 0.05, false)).unwrap();
    assert_eq!(a.measurements, b.measurements);
    assert_eq!(datagram_of(&a), datagram_of(&b));
    let c = ExperimentRunner::try_run(&cell(6, 8, 0.05, false)).unwrap();
    assert_ne!(
        datagram_of(&a).owd_down_ms,
        datagram_of(&c).owd_down_ms,
        "different seeds must land different wire stamps"
    );
}

/// (5) Traced datagram reps attribute every delivered probe's Δd with
/// a residual under 1 µs.
#[test]
fn attribution_closes_on_delivered_probes() {
    let c = cell(4, 0xB32B_2013, 0.03, true);
    let r = ExperimentRunner::try_run(&c).unwrap();
    assert_eq!(r.traces.len(), 4);
    assert!(!r.attributions.is_empty());
    assert_eq!(r.attributions.len(), r.measurements.len());
    for a in &r.attributions {
        assert!(
            a.residual_ms.abs() < 1e-3,
            "rep {} round {}: residual {} ms",
            a.rep,
            a.round,
            a.residual_ms
        );
    }
}
