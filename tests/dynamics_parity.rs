//! Tier-1 guarantees of the link-dynamics layer and the scored battery:
//!
//! 1. **Static-shape parity** — a [`LinkShape`] that spells out the
//!    defaults (an explicit spec equal to the stock server link, an
//!    empty step schedule) is byte-identical to the unshaped cell: the
//!    lazily-evaluated rate path reduces to the exact fixed-rate
//!    expression.
//! 2. **Bufferbloat appraisal** — the deep drop-tail queue inflates the
//!    fresh-connection method's Δd1 severalfold over the clean testbed;
//!    the CoDel variant of the same scenario shows measurably less
//!    inflation and converts the standing delay into visible drops.
//! 3. **Standing-queue control** — at the engine level, a sustained
//!    overload through a deep drop-tail queue builds seconds of
//!    queueing delay; the identical flood under CoDel stays bounded
//!    near the target.
//! 4. **Scheduler parity** — shaped cells (AQM, time-varying) and the
//!    whole scored battery stay bit-identical between the serial and
//!    the work-stealing executor.

#![deny(deprecated)]

use std::any::Any;

use bnm::core::recommend::appraise_snapshot;
use bnm::prelude::*;
use bnm::sim::link::LinkSpec;
use bnm::sim::time::{SimDuration, SimTime};
use bnm::sim::{Ctx, Engine, Node, PortNo};
use bnm::{run_battery, BatteryConfig, LinkDynamics, LinkShape, QueueDiscipline, RateSchedule};
use bytes::Bytes;

const SEED: u64 = 0xB32B_D1CE;

fn cell(method: MethodId, browser: BrowserKind, os: OsKind, reps: u32) -> CellBuilder {
    ExperimentCell::builder(method, RuntimeSel::Browser(browser), os)
        .reps(reps)
        .seed(SEED)
}

/// (1) Spelling out the defaults through the shape plumbing changes no
/// output bit: same Δd samples, same matched measurements.
#[test]
fn explicit_static_shape_is_byte_identical_to_the_unshaped_cell() {
    let plain = cell(
        MethodId::WebSocket,
        BrowserKind::Chrome,
        OsKind::Ubuntu1204,
        3,
    )
    .build()
    .unwrap();
    // An explicit spec equal to the stock server link, plus a schedule
    // with no change-points: none of it is `is_static()`, so the whole
    // dynamics path is installed and must still reproduce the fixed-rate
    // arithmetic exactly.
    let shaped = cell(
        MethodId::WebSocket,
        BrowserKind::Chrome,
        OsKind::Ubuntu1204,
        3,
    )
    .link_shape(LinkShape {
        down_spec: Some(LinkSpec::fast_ethernet()),
        up_spec: Some(LinkSpec::fast_ethernet()),
        down: LinkDynamics::scheduled(RateSchedule::Steps(Vec::new())),
        up: LinkDynamics::scheduled(RateSchedule::Steps(Vec::new())),
    })
    .build()
    .unwrap();
    assert!(!shaped.link_shape.is_static());

    let a = ExperimentRunner::try_run(&plain).unwrap();
    let b = ExperimentRunner::try_run(&shaped).unwrap();
    assert_eq!(a.d1, b.d1);
    assert_eq!(a.d2, b.d2);
    assert_eq!(a.measurements, b.measurements);
    assert_eq!(a.excluded_rounds, b.excluded_rounds);
    assert_eq!(a.link, b.link);
}

/// The bufferbloat scenario pair used by the battery and by (2): eight
/// synchronized clients over a 0.4 Mbps server link, stock 256 KiB
/// drop-tail queue vs the same link under an RFC 8289 CoDel.
fn bloat_builder(aqm: bool) -> CellBuilder {
    let b = cell(MethodId::FlashGet, BrowserKind::Opera, OsKind::Windows7, 5)
        .contention(ContentionSpec::clients(8).with_server_link_rate(400_000));
    if aqm {
        b.link_shape(LinkShape::symmetric(LinkDynamics::codel()))
    } else {
        b
    }
}

/// (2) The deep queue inflates Flash GET's Δd1 (its in-round handshake
/// waits behind the crowd before `tN_s`); the CoDel variant shows less
/// inflation and reports the drops the drop-tail queue never takes.
#[test]
fn bufferbloat_inflates_flash_d1_and_the_aqm_variant_relieves_it() {
    let appraise = |cell: &ExperimentCell| {
        let result = ExperimentRunner::try_run(cell).unwrap();
        let snap = result.summary(cell);
        (appraise_snapshot(&snap).unwrap(), snap.link.unwrap())
    };
    let clean = cell(MethodId::FlashGet, BrowserKind::Opera, OsKind::Windows7, 5)
        .build()
        .unwrap();
    let (clean_v, _) = appraise(&clean);
    let (bloat_v, bloat_link) = appraise(&bloat_builder(false).build().unwrap());
    let (aqm_v, aqm_link) = appraise(&bloat_builder(true).build().unwrap());

    assert!(
        bloat_v.median_ms > 2.0 * clean_v.median_ms,
        "deep queue must inflate Δd1: clean {:.1} ms, bloated {:.1} ms",
        clean_v.median_ms,
        bloat_v.median_ms
    );
    assert!(
        aqm_v.median_ms < bloat_v.median_ms,
        "CoDel must relieve the inflation: drop-tail {:.1} ms, AQM {:.1} ms",
        bloat_v.median_ms,
        aqm_v.median_ms
    );
    // The drop-tail queue is deep enough to absorb the whole burst
    // silently; CoDel signals instead of queueing.
    assert_eq!(
        bloat_link.down_queue_drops + bloat_link.up_queue_drops,
        0,
        "bufferbloat means no drops, only delay"
    );
    assert!(
        aqm_link.down_queue_drops > 0,
        "the AQM must actually drop: {aqm_link:?}"
    );
}

/// A node flooding fixed-size frames on port 0 at a fixed interval.
struct Flood {
    frames: usize,
    every: SimDuration,
    size: usize,
}

impl Node for Flood {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for i in 0..self.frames {
            ctx.set_timer(self.every.saturating_mul(i as u64), i as u64);
        }
    }
    fn on_frame(&mut self, _: &mut Ctx, _: PortNo, _: Bytes) {}
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        ctx.send_frame(0, Bytes::from(vec![token as u8; self.size]));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A sink that just counts arrivals.
struct Sink {
    received: usize,
}

impl Node for Sink {
    fn on_frame(&mut self, _: &mut Ctx, _: PortNo, _: Bytes) {
        self.received += 1;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// (3) Sustained 1.2× overload through a deep queue: drop-tail lets the
/// backlog grow until the 256 KiB bound — seconds of standing delay —
/// while the same flood under CoDel is shed early, holding the standing
/// queue an order of magnitude smaller.
#[test]
fn engine_level_standing_queue_is_bounded_by_codel() {
    // 1500 B every 25 ms = 480 kbps offered over a 0.4 Mbps link.
    let spec = LinkSpec {
        rate_bps: 400_000,
        propagation: SimDuration::ZERO,
        extra_delay: SimDuration::ZERO,
        queue_limit_bytes: 256 * 1024,
    };
    let run = |aqm: bool| {
        let mut e = Engine::new();
        let flood = e.add_node(Box::new(Flood {
            frames: 1200,
            every: SimDuration::from_millis(25),
            size: 1500,
        }));
        let sink = e.add_node(Box::new(Sink { received: 0 }));
        let link = e.connect(flood, 0, sink, 0, spec);
        if aqm {
            e.set_dynamics(link, flood, LinkDynamics::codel());
        }
        e.run_until(SimTime::from_secs(60));
        (
            e.queue_peak_bytes(link, flood),
            e.queue_drops(link, flood),
            e.node_ref::<Sink>(sink).received,
        )
    };
    let (droptail_peak, droptail_drops, droptail_received) = run(false);
    let (codel_peak, codel_drops, codel_received) = run(true);

    // Peak backlog in seconds of service time at 0.4 Mbps.
    let delay_secs = |bytes: usize| bytes as f64 * 8.0 / 400_000.0;
    assert!(
        delay_secs(droptail_peak) > 2.0,
        "drop-tail must build seconds of standing queue, got {:.2} s",
        delay_secs(droptail_peak)
    );
    assert!(
        delay_secs(codel_peak) < 0.5,
        "CoDel must hold the standing queue near target, got {:.2} s",
        delay_secs(codel_peak)
    );
    assert!(codel_peak * 10 < droptail_peak);
    assert!(
        codel_drops > droptail_drops,
        "CoDel signals early and often: {codel_drops} vs {droptail_drops}"
    );
    // Both runs still deliver the serviceable share of the flood.
    assert!(droptail_received > 0 && codel_received > 0);
}

/// (4a) Cells with live dynamics — the AQM bloat pair and a time-varying
/// schedule — keep the executor's serial/parallel bit parity.
#[test]
fn dynamic_cells_are_bit_identical_across_schedulers() {
    let varying = cell(MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204, 3)
        .link_shape(LinkShape {
            down_spec: Some(LinkSpec {
                rate_bps: 2_000_000,
                ..LinkSpec::fast_ethernet()
            }),
            down: LinkDynamics::scheduled(RateSchedule::OnOff {
                period: SimDuration::from_millis(200),
                on: SimDuration::from_millis(50),
                on_bps: 256_000,
            }),
            ..LinkShape::default()
        })
        .build()
        .unwrap();
    let aqm = bloat_builder(true).build().unwrap();
    let cells = vec![varying, aqm];

    let serial = Executor::serial().run(&cells);
    let parallel = Executor::with_workers(4).run(&cells);
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
        assert_eq!(s.measurements, p.measurements, "cell {i}");
        assert_eq!(s.link, p.link, "cell {i} link telemetry");
        assert_eq!(s.sessions.len(), p.sessions.len());
        for (ss, ps) in s.sessions.iter().zip(&p.sessions) {
            assert_eq!(ss.session, ps.session);
            assert_eq!(ss.d1, ps.d1);
            assert_eq!(ss.d2, ps.d2);
        }
        assert_eq!(
            s.summary(&cells[i]).to_json(),
            p.summary(&cells[i]).to_json(),
            "cell {i} snapshot"
        );
    }
}

/// (4b) The whole scored battery — every scenario family — renders the
/// identical report from the serial and the work-stealing executor, and
/// covers all six scenario families.
#[test]
fn battery_report_is_bit_identical_across_schedulers() {
    let cfg = BatteryConfig {
        reps: 2,
        seed: SEED,
    };
    let serial = run_battery(&cfg, &Executor::serial()).unwrap();
    let parallel = run_battery(&cfg, &Executor::with_workers(4)).unwrap();
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.scenarios.len(), 6);
    for s in &serial.scenarios {
        assert!(
            !s.entries.is_empty(),
            "{:?} has no scored entries",
            s.scenario
        );
    }
}

/// The AQM discipline plumbs through the public config types unchanged.
#[test]
fn shape_round_trips_through_the_cell() {
    let shape = LinkShape::symmetric(LinkDynamics {
        schedule: RateSchedule::Static,
        discipline: QueueDiscipline::codel(),
    });
    let c = cell(
        MethodId::WebSocket,
        BrowserKind::Chrome,
        OsKind::Ubuntu1204,
        1,
    )
    .link_shape(shape.clone())
    .build()
    .unwrap();
    assert_eq!(c.link_shape, shape);
}
