//! Executor integration tests through the `bnm` façade: parallel runs
//! must be bit-identical to serial ones, and a bad cell in a batch must
//! not take the rest down.

use bnm::browser::BrowserKind;
use bnm::methods::MethodId;
use bnm::timeapi::OsKind;
use bnm::{Executor, ExperimentCell, ExperimentRunner, RunError, RuntimeSel};

fn grid() -> Vec<ExperimentCell> {
    [
        (MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204),
        (
            MethodId::WebSocket,
            BrowserKind::Firefox,
            OsKind::Ubuntu1204,
        ),
        (MethodId::JavaTcp, BrowserKind::Firefox, OsKind::Windows7),
        (MethodId::FlashGet, BrowserKind::Opera, OsKind::Windows7),
    ]
    .into_iter()
    .map(|(m, b, os)| {
        ExperimentCell::builder(m, RuntimeSel::Browser(b), os)
            .reps(8)
            .build()
            .expect("grid cells are runnable per Table 2")
    })
    .collect()
}

#[test]
fn parallel_results_are_bit_identical_to_serial() {
    let cells = grid();
    let serial = Executor::serial().run(&cells);
    for workers in [2, 3, 8] {
        let parallel = Executor::with_workers(workers).run(&cells);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            // Float samples compare exactly: the merge replays rep order.
            assert_eq!(s.d1, p.d1, "{workers} workers diverged on Δd1");
            assert_eq!(s.d2, p.d2, "{workers} workers diverged on Δd2");
            assert_eq!(s.failures, p.failures);
            assert_eq!(s.measurements.len(), p.measurements.len());
        }
    }
}

#[test]
fn executor_matches_the_single_cell_runner() {
    let cells = grid();
    let batch = Executor::new().run(&cells);
    for (cell, got) in cells.iter().zip(batch) {
        let alone = ExperimentRunner::try_run(cell).unwrap();
        let got = got.unwrap();
        assert_eq!(alone.d1, got.d1);
        assert_eq!(alone.d2, got.d2);
    }
}

#[test]
fn one_unrunnable_cell_does_not_sink_the_batch() {
    let mut cells = grid();
    // WebSocket predates IE9 — unrunnable per the Table 2 feature matrix.
    cells.insert(
        1,
        ExperimentCell::paper(
            MethodId::WebSocket,
            RuntimeSel::Browser(BrowserKind::Ie9),
            OsKind::Windows7,
        ),
    );
    let results = Executor::new().run(&cells);
    assert_eq!(results.len(), cells.len());
    assert!(matches!(results[1], Err(RunError::Unrunnable { .. })));
    for (i, r) in results.iter().enumerate() {
        if i != 1 {
            assert!(r.is_ok(), "runnable cell {i} failed: {r:?}");
        }
    }
}

#[test]
fn builder_rejects_what_the_executor_would_reject() {
    let err = ExperimentCell::builder(
        MethodId::WebSocket,
        RuntimeSel::Browser(BrowserKind::Ie9),
        OsKind::Windows7,
    )
    .build()
    .unwrap_err();
    assert_eq!(format!("{err}"), "IE (W) cannot run WebSocket");
}
