//! Cross-crate pipeline tests: testbed ↔ capture ↔ pcap ↔ matching, plus
//! robustness under fault injection and capture noise.

use bnm::browser::{BrowserKind, BrowserProfile};
use bnm::core::matching::match_round;
use bnm::core::server_side::match_server_round;
use bnm::core::testbed::{Testbed, TestbedConfig};
use bnm::core::{ExperimentCell, ExperimentRunner, RuntimeSel};
use bnm::methods::MethodId;
use bnm::sim::pcap;
use bnm::sim::time::SimDuration;
use bnm::timeapi::{MachineTimer, OsKind};

fn build(method: MethodId, cfg: &TestbedConfig, rep: u64) -> Testbed {
    let profile = BrowserProfile::build(BrowserKind::Chrome, OsKind::Ubuntu1204).unwrap();
    let machine = MachineTimer::new(OsKind::Ubuntu1204, 99);
    Testbed::build(cfg, method.plan(None), profile, machine, rep, 99)
}

#[test]
fn pcap_export_roundtrips_through_the_parser() {
    let mut tb = build(MethodId::XhrGet, &TestbedConfig::default(), 0);
    tb.run();
    let capture = tb.engine.tap(tb.client_tap);
    let bytes = pcap::to_bytes(capture);
    // Global header.
    assert_eq!(&bytes[..4], &0xa1b2_c3d4u32.to_le_bytes());
    // Walk all records; count parseable Ethernet frames.
    let mut offset = 24;
    let mut frames = 0;
    while offset < bytes.len() {
        let incl = u32::from_le_bytes(bytes[offset + 8..offset + 12].try_into().unwrap()) as usize;
        let frame = &bytes[offset + 16..offset + 16 + incl];
        assert!(bnm::sim::wire::EthernetFrame::parse(frame).is_ok());
        frames += 1;
        offset += 16 + incl;
    }
    assert_eq!(frames, capture.len());
    assert!(frames > 10, "a full session has many packets: {frames}");
}

#[test]
fn client_and_server_captures_tell_one_story() {
    let mut tb = build(MethodId::XhrGet, &TestbedConfig::default(), 7);
    tb.run();
    let client = tb.engine.tap(tb.client_tap);
    let server = tb.engine.tap(tb.server_tap);
    for round in [1u8, 2] {
        let cw = match_round(client, MethodId::XhrGet, round, 7).unwrap();
        let sw = match_server_round(server, MethodId::XhrGet, round, 7).unwrap();
        // Causality along the path: client sends, server receives, server
        // replies, client receives.
        assert!(cw.tn_s < sw.request_rx);
        assert!(sw.request_rx <= sw.response_tx);
        assert!(sw.response_tx < cw.tn_r);
        // The server side sits inside the client-observed RTT.
        let client_rtt = cw.tn_r.signed_millis_since(cw.tn_s);
        let server_turn = sw.turnaround_ms();
        assert!(server_turn < client_rtt);
        // One-way 50 ms delay on the server egress: response path ≈ 50 ms.
        let resp_path = cw.tn_r.signed_millis_since(sw.response_tx);
        assert!(
            (49.9..51.0).contains(&resp_path),
            "response path {resp_path}"
        );
    }
}

#[test]
fn capture_noise_perturbs_but_does_not_break_matching() {
    let cell = ExperimentCell {
        capture_noise_ns: 300_000, // the paper's "> 0.3 ms" software bound
        ..ExperimentCell::paper(
            MethodId::WebSocket,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Ubuntu1204,
        )
    }
    .with_reps(10);
    let noisy = ExperimentRunner::try_run(&cell).unwrap();
    assert_eq!(noisy.failures, 0);
    let clean = ExperimentRunner::try_run(
        &ExperimentCell::paper(
            MethodId::WebSocket,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Ubuntu1204,
        )
        .with_reps(10),
    )
    .unwrap();
    // Noise moves individual Δd by at most ±0.3 ms.
    for (a, b) in noisy.pooled().iter().zip(clean.pooled().iter()) {
        assert!((a - b).abs() <= 0.61, "noise bound violated: {a} vs {b}");
    }
}

#[test]
fn lossy_link_still_yields_measurements_via_retransmission() {
    // Inject loss into the client's egress; TCP recovers and the session
    // completes. Δd may inflate (retransmission timeouts are real time),
    // but the pipeline must not wedge.
    let mut tb = build(MethodId::JavaTcp, &TestbedConfig::default(), 3);
    tb.engine.set_fault(
        0, // client link
        tb.client,
        bnm::sim::fault::FaultSpec {
            drop_chance: 0.15,
            ..bnm::sim::fault::FaultSpec::CLEAN
        },
        bnm::sim::rng::stream(5, "loss"),
    );
    tb.run();
    assert!(tb.session().result().completed, "session survives 15% loss");
    let capture = tb.engine.tap(tb.client_tap);
    for round in [1u8, 2] {
        match_round(capture, MethodId::JavaTcp, round, 3).unwrap();
    }
}

#[test]
fn corrupting_link_is_survived_by_checksums() {
    let mut tb = build(MethodId::XhrGet, &TestbedConfig::default(), 4);
    tb.engine.set_fault(
        1, // server link
        2, // switch end transmits toward... node ids: client=0, server=1, switch=2
        bnm::sim::fault::FaultSpec {
            corrupt_chance: 0.2,
            ..bnm::sim::fault::FaultSpec::CLEAN
        },
        bnm::sim::rng::stream(6, "corrupt"),
    );
    tb.run();
    assert!(tb.session().result().completed);
}

#[test]
fn server_handler_delay_is_invisible_to_delta_d() {
    // Δd subtracts network timestamps taken *below* the server delay, so
    // moving 20 ms from the link into the server handler must leave Δd
    // unchanged (it inflates both tB and tN intervals equally).
    let base = ExperimentCell::paper(
        MethodId::XhrGet,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .with_reps(8);
    let plain = ExperimentRunner::try_run(&base).unwrap();

    let profile = BrowserProfile::build(BrowserKind::Chrome, OsKind::Ubuntu1204).unwrap();
    let mut cfg = TestbedConfig::default();
    cfg.server.handler_delay = SimDuration::from_millis(20);
    let machine = MachineTimer::new(OsKind::Ubuntu1204, 99);
    let mut tb = Testbed::build(&cfg, MethodId::XhrGet.plan(None), profile, machine, 0, 99);
    tb.run();
    let capture = tb.engine.tap(tb.client_tap);
    let rounds = tb.session().result().rounds.clone();
    for r in rounds {
        let wire = match_round(capture, MethodId::XhrGet, r.round, 0).unwrap();
        let net_rtt = wire.tn_r.signed_millis_since(wire.tn_s);
        // The handler delay shows up in the *network* RTT…
        assert!(net_rtt > 69.0, "net rtt {net_rtt}");
        let delta = r.browser_rtt_ms() - net_rtt;
        // …but Δd stays in the same band as the plain run.
        let plain_med = bnm::stats::Summary::of(&plain.pooled()).median;
        assert!(
            (delta - plain_med).abs() < 12.0,
            "Δd {delta} vs plain median {plain_med}"
        );
    }
}

#[test]
fn udp_method_end_to_end() {
    let cell = ExperimentCell::paper(
        MethodId::JavaUdp,
        RuntimeSel::Browser(BrowserKind::Firefox),
        OsKind::Ubuntu1204,
    )
    .with_reps(6);
    let r = ExperimentRunner::try_run(&cell).unwrap();
    assert_eq!(r.failures, 0);
    for m in &r.measurements {
        // UDP has no handshake at all: the wire RTT is just delay + wire.
        let rtt = m.network_rtt_ms();
        assert!((50.0..51.0).contains(&rtt), "udp wire rtt {rtt}");
        assert!(m.delta_d_ms() < 2.0);
    }
}

#[test]
fn web_server_served_everything_the_session_needed() {
    let mut tb = build(MethodId::FlashGet, &TestbedConfig::default(), 0);
    tb.run();
    let stats = &tb.web_server().stats;
    assert_eq!(stats.pages, 1, "container page");
    assert!(stats.gets >= 3, "swf + 2 probes, got {}", stats.gets);
    assert_eq!(stats.not_found, 0, "no 404s in a clean session");
}

#[test]
fn cross_traffic_inflates_rtt_but_not_delta_d() {
    use bnm::core::testbed::CrossTraffic;
    use bnm::stats::Summary;

    // Heavy UDP noise contending on the server link: 1400-byte datagrams
    // at 6000 pps ≈ 67 Mbit/s of a 100 Mbit/s link, echoed back.
    let run_one = |noise: bool| {
        let profile = BrowserProfile::build(BrowserKind::Chrome, OsKind::Ubuntu1204).unwrap();
        let machine = MachineTimer::new(OsKind::Ubuntu1204, 31);
        let mut cfg = TestbedConfig::default();
        if noise {
            cfg.cross_traffic = Some(CrossTraffic {
                rate_pps: 6000,
                payload: 1400,
                duration: SimDuration::from_secs(2),
            });
        }
        let mut tb = Testbed::build(&cfg, MethodId::JavaTcp.plan(None), profile, machine, 0, 31);
        tb.run();
        assert!(tb.session().result().completed, "session survives load");
        let capture = tb.engine.tap(tb.client_tap);
        let rounds = tb.session().result().rounds.clone();
        let mut rtts = Vec::new();
        let mut deltas = Vec::new();
        for r in rounds {
            let w = match_round(capture, MethodId::JavaTcp, r.round, 0).unwrap();
            rtts.push(w.tn_r.signed_millis_since(w.tn_s));
            deltas.push(r.browser_rtt_ms() - w.tn_r.signed_millis_since(w.tn_s));
        }
        (Summary::of(&rtts).median, Summary::of(&deltas).median)
    };
    let (clean_rtt, clean_delta) = run_one(false);
    let (noisy_rtt, noisy_delta) = run_one(true);
    // Queueing inflates the wire RTT itself…
    assert!(
        noisy_rtt > clean_rtt + 0.05,
        "noise must add queueing delay: {clean_rtt} vs {noisy_rtt}"
    );
    // …but Δd (browser minus wire) barely moves: both timestamp pairs
    // absorb the queueing equally. This is why the paper's subtraction
    // methodology is sound.
    assert!(
        (noisy_delta - clean_delta).abs() < 1.5,
        "Δd must be robust to cross traffic: {clean_delta} vs {noisy_delta}"
    );
}
