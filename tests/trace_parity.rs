//! Tier-1 guarantees of the tracing layer:
//!
//! 1. **Parity** — a parallel traced run produces traces and Δd
//!    attributions byte-identical (via the deterministic JSON export)
//!    to a serial run of the same cells.
//! 2. **Attribution closure** — for every Figure 3 method × runtime
//!    combination on a noise-free capture, the per-round component
//!    decomposition (dispatch + bridge + parse + stack + handshake +
//!    init + retrans + quantization) explains the measured Δd to
//!    within 1 µs.
//! 3. **Observer effect: none** — tracing must not change the numbers.

#![deny(deprecated)]

use bnm::core::attribution;
use bnm::core::config::figure3_combos;
use bnm::prelude::*;

fn traced_cell(method: MethodId, rt: RuntimeSel, os: OsKind, reps: u32) -> ExperimentCell {
    ExperimentCell::builder(method, rt, os)
        .reps(reps)
        .seed(0xB32B_7ACE)
        .trace(true)
        .build_unchecked()
}

#[test]
fn parallel_traces_are_byte_identical_to_serial() {
    let cells: Vec<ExperimentCell> = [
        (MethodId::XhrGet, BrowserKind::Chrome, OsKind::Ubuntu1204),
        (
            MethodId::WebSocket,
            BrowserKind::Firefox,
            OsKind::Ubuntu1204,
        ),
        (MethodId::FlashGet, BrowserKind::Opera, OsKind::Windows7),
        (MethodId::JavaTcp, BrowserKind::Firefox, OsKind::Windows7),
    ]
    .into_iter()
    .map(|(m, b, os)| traced_cell(m, RuntimeSel::Browser(b), os, 4))
    .collect();

    let serial = Executor::serial().run(&cells);
    let parallel = Executor::with_workers(4).run(&cells);
    for (s, p) in serial.iter().zip(&parallel) {
        let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
        assert_eq!(s.d1, p.d1);
        assert_eq!(s.d2, p.d2);
        assert_eq!(s.traces.len(), 4);
        assert_eq!(s.traces.len(), p.traces.len());
        for (st, pt) in s.traces.iter().zip(&p.traces) {
            assert_eq!(st.to_json(), pt.to_json());
            assert_eq!(st.to_csv(), pt.to_csv());
        }
        assert_eq!(
            attribution::to_json(&s.attributions),
            attribution::to_json(&p.attributions)
        );
    }
}

/// Every Figure 3 cell's attribution must close the Eq. 1 budget: the
/// residual after components + quantization is pure f64 rounding.
#[test]
fn attribution_explains_delta_d_for_every_figure3_cell() {
    let mut checked = 0u32;
    for method in MethodId::FIGURE3 {
        for (rt, os) in figure3_combos() {
            let cell = traced_cell(method, rt, os, 2);
            if !cell.is_runnable() {
                continue;
            }
            let r = ExperimentRunner::try_run(&cell).unwrap();
            assert_eq!(
                r.attributions.len(),
                r.measurements.len(),
                "{}: every measured round is attributed",
                cell.label()
            );
            for a in &r.attributions {
                assert!(
                    a.residual_ms.abs() < 1e-3,
                    "{} rep {} round {}: residual {} ms (Δd {}, explained {})",
                    cell.label(),
                    a.rep,
                    a.round,
                    a.residual_ms,
                    a.delta_d_ms,
                    a.explained_ms()
                );
                checked += 1;
            }
        }
    }
    // 10 methods × 8 combos minus the Table 2 holes — the loop must
    // actually have exercised the grid.
    assert!(checked > 200, "only {checked} rounds checked");
}

/// Attribution components land where the paper says the time goes:
/// Opera's Flash GET round 1 hides a TCP handshake (§4.1), round 2
/// doesn't; the quantization share on Windows Java is visible.
#[test]
fn attribution_components_tell_the_papers_stories() {
    let cell = traced_cell(
        MethodId::FlashGet,
        RuntimeSel::Browser(BrowserKind::Opera),
        OsKind::Windows7,
        4,
    );
    let r = ExperimentRunner::try_run(&cell).unwrap();
    for a in &r.attributions {
        if a.round == 1 {
            // The hidden handshake is a full ~50 ms server-delay RTT.
            assert!(
                a.handshake_ms > 45.0,
                "round 1 handshake {}",
                a.handshake_ms
            );
            assert!(a.init_ms > 0.0, "round 1 first-use {}", a.init_ms);
        } else {
            assert_eq!(a.handshake_ms, 0.0, "round 2 reuses the connection");
        }
        assert!(a.bridge_ms > 0.0, "Flash always crosses the plugin bridge");
    }
}

/// The impairment knob at rest must be invisible: a cell that spells
/// out [`Impairment::NONE`] produces byte-identical traces, Δd samples
/// and attributions to one that predates the knob (never mentions it),
/// and excludes nothing.
#[test]
fn clean_impairment_is_byte_identical_to_no_impairment() {
    let plain = traced_cell(
        MethodId::WebSocket,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
        4,
    );
    let spelled_out = plain.clone().with_impairment(Impairment::NONE);
    let a = ExperimentRunner::try_run(&plain).unwrap();
    let b = ExperimentRunner::try_run(&spelled_out).unwrap();
    assert_eq!(a.d1, b.d1);
    assert_eq!(a.d2, b.d2);
    assert_eq!(a.excluded_rounds, 0);
    assert_eq!(b.excluded_rounds, 0);
    for (at, bt) in a.traces.iter().zip(&b.traces) {
        assert_eq!(at.to_json(), bt.to_json());
        assert_eq!(at.to_csv(), bt.to_csv());
    }
    assert_eq!(
        attribution::to_json(&a.attributions),
        attribution::to_json(&b.attributions)
    );
}

#[test]
fn tracing_leaves_measurements_untouched() {
    let plain = ExperimentCell::paper(
        MethodId::Dom,
        RuntimeSel::Browser(BrowserKind::Firefox),
        OsKind::Ubuntu1204,
    )
    .with_reps(5);
    let traced = plain.clone().with_trace();
    let a = ExperimentRunner::try_run(&plain).unwrap();
    let b = ExperimentRunner::try_run(&traced).unwrap();
    assert_eq!(a.d1, b.d1);
    assert_eq!(a.d2, b.d2);
    assert!(a.traces.is_empty());
    assert_eq!(b.traces.len(), 5);
}
