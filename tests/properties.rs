//! Property-based tests (proptest) over the core data structures and
//! invariants: wire codecs, checksums, WebSocket framing, base64/SHA-1,
//! sequence arithmetic, buffers, statistics, delay models, clocks.

use bytes::Bytes;
use proptest::prelude::*;
use std::net::Ipv4Addr;

use bnm::http::websocket::{accept_key, base64, frame::Frame, frame::FrameDecoder, frame::Opcode};
use bnm::sim::time::{SimDuration, SimTime};
use bnm::sim::wire::{
    EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, ParsedPacket, TcpFlags, TcpSegment,
    UdpDatagram,
};
use bnm::stats::{summary::quantile, BoxStats, Cdf, Summary};
use bnm::tcp::seq::SeqNum;

fn ip_strategy() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    // ---------- wire formats ----------

    #[test]
    fn tcp_segment_roundtrips(
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in 0u8..32,
        window in any::<u16>(),
        mss in proptest::option::of(536u16..9000),
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        src in ip_strategy(),
        dst in ip_strategy(),
    ) {
        let seg = TcpSegment {
            src_port, dst_port, seq, ack,
            flags: TcpFlags(flags),
            window, mss,
            payload: Bytes::from(payload.clone()),
        };
        let wire = seg.emit(src, dst);
        let back = TcpSegment::parse(&wire, src, dst).unwrap();
        prop_assert_eq!(back.src_port, src_port);
        prop_assert_eq!(back.dst_port, dst_port);
        prop_assert_eq!(back.seq, seq);
        prop_assert_eq!(back.ack, ack);
        prop_assert_eq!(back.flags.0, flags);
        prop_assert_eq!(back.window, window);
        prop_assert_eq!(back.mss, mss);
        prop_assert_eq!(&back.payload[..], &payload[..]);
    }

    #[test]
    fn full_frame_roundtrips_and_any_corruption_is_caught(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        ident in any::<u16>(),
        corrupt_at in any::<usize>(),
        corrupt_xor in 1u8..=255,
    ) {
        let src = Ipv4Addr::new(192, 168, 1, 2);
        let dst = Ipv4Addr::new(192, 168, 1, 10);
        let seg = TcpSegment {
            src_port: 50000, dst_port: 80, seq: 1, ack: 2,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 100, mss: None,
            payload: Bytes::from(payload),
        };
        let frame = EthernetFrame {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: EtherType::Ipv4,
            payload: Ipv4Packet {
                src, dst, protocol: IpProtocol::Tcp, ttl: 64, ident,
                payload: seg.emit(src, dst),
            }.emit(),
        }.emit();
        // Clean parse succeeds.
        prop_assert!(ParsedPacket::parse(&frame).is_ok());
        // Flip one byte anywhere past the Ethernet header: the IPv4 or TCP
        // checksum must catch it (or the parse must fail structurally).
        let mut bad = frame.to_vec();
        let idx = 14 + corrupt_at % (bad.len() - 14);
        bad[idx] ^= corrupt_xor;
        let parsed = ParsedPacket::parse(&bad);
        prop_assert!(parsed.is_err(), "corruption at {} went unnoticed", idx);
    }

    #[test]
    fn udp_roundtrips(
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..400),
        src in ip_strategy(),
        dst in ip_strategy(),
    ) {
        let d = UdpDatagram { src_port, dst_port, payload: Bytes::from(payload.clone()) };
        let back = UdpDatagram::parse(&d.emit(src, dst), src, dst).unwrap();
        prop_assert_eq!(back.src_port, src_port);
        prop_assert_eq!(&back.payload[..], &payload[..]);
    }

    // ---------- WebSocket / base64 ----------

    #[test]
    fn ws_frames_roundtrip_masked_and_unmasked(
        payload in proptest::collection::vec(any::<u8>(), 0..70000),
        mask in proptest::option::of(any::<[u8; 4]>()),
    ) {
        let f = Frame { opcode: Opcode::Binary, payload: Bytes::from(payload) };
        let wire = f.emit(mask);
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        let out = d.poll().unwrap().unwrap();
        prop_assert_eq!(out, f);
        prop_assert!(d.poll().unwrap().is_none());
    }

    #[test]
    fn ws_decoder_is_incremental(
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        split in any::<usize>(),
    ) {
        let f = Frame { opcode: Opcode::Text, payload: Bytes::from(payload) };
        let wire = f.emit(Some([1, 2, 3, 4]));
        let cut = split % wire.len().max(1);
        let mut d = FrameDecoder::new();
        d.feed(&wire[..cut]);
        let early = d.poll().unwrap();
        prop_assert!(early.is_none() || cut == wire.len());
        d.feed(&wire[cut..]);
        prop_assert_eq!(d.poll().unwrap().unwrap(), f);
    }

    #[test]
    fn base64_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(base64::decode(&base64::encode(&data)).unwrap(), data);
    }

    #[test]
    fn accept_key_is_deterministic_and_injective_ish(a in "[A-Za-z0-9+/]{22}==", b in "[A-Za-z0-9+/]{22}==") {
        prop_assert_eq!(accept_key(&a), accept_key(&a));
        if a != b {
            prop_assert_ne!(accept_key(&a), accept_key(&b));
        }
    }

    // ---------- sequence arithmetic ----------

    #[test]
    fn seqnum_ordering_is_antisymmetric_for_small_gaps(base in any::<u32>(), gap in 1u32..1_000_000) {
        let a = SeqNum(base);
        let b = a + gap;
        prop_assert!(a.lt(b));
        prop_assert!(!b.lt(a));
        prop_assert!(b.gt(a));
        prop_assert_eq!(b.since(a), gap);
    }

    #[test]
    fn seqnum_window_membership(base in any::<u32>(), len in 1u32..10_000, off in 0u32..20_000) {
        let s = SeqNum(base);
        let x = s + off;
        prop_assert_eq!(x.in_window(s, len), off < len);
    }

    // ---------- statistics ----------

    #[test]
    fn summary_orders_its_quantiles(data in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&data);
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std >= 0.0);
    }

    #[test]
    fn boxstats_whiskers_inside_data_outliers_outside_fences(
        data in proptest::collection::vec(-1e4f64..1e4, 4..150)
    ) {
        let b = BoxStats::of(&data);
        let s = Summary::of(&data);
        prop_assert!(b.whisker_lo >= s.min - 1e-9);
        prop_assert!(b.whisker_hi <= s.max + 1e-9);
        prop_assert!(b.whisker_lo <= b.q1 + 1e-9);
        prop_assert!(b.whisker_hi >= b.q3 - 1e-9);
        let lo_fence = b.q1 - 1.5 * b.iqr();
        let hi_fence = b.q3 + 1.5 * b.iqr();
        for o in &b.outliers {
            prop_assert!(*o < lo_fence || *o > hi_fence);
        }
        // Outlier count + in-fence count == n.
        let inside = data.iter().filter(|&&x| x >= lo_fence && x <= hi_fence).count();
        prop_assert_eq!(inside + b.outliers.len(), b.n);
    }

    #[test]
    fn cdf_is_monotone_and_bounded(data in proptest::collection::vec(-1e4f64..1e4, 1..100), probes in proptest::collection::vec(-2e4f64..2e4, 2..20)) {
        let c = Cdf::of(&data);
        let mut sorted_probes = probes.clone();
        sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0;
        for p in sorted_probes {
            let f = c.eval(p);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= last - 1e-12);
            last = f;
        }
        let (lo, hi) = c.range();
        prop_assert_eq!(c.eval(hi), 1.0);
        prop_assert!(c.eval(lo - 1.0) == 0.0);
    }

    #[test]
    fn quantile_is_monotone_in_p(data in proptest::collection::vec(-1e4f64..1e4, 1..100), p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(quantile(&sorted, lo) <= quantile(&sorted, hi) + 1e-9);
    }

    // The streaming sketch must agree with the exact R-7 quantiles it
    // replaces in bounded-retention mode, within its documented bound:
    // a relative error of `relative_error_bound()` on the value axis
    // (plus the tiny absolute epsilon that the zero bucket absorbs).
    // Signs, duplicates and wide magnitude spreads are all fair game.
    #[test]
    fn sketch_quantiles_match_exact_r7_within_bound(
        data in proptest::collection::vec(-1e6f64..1e6, 1..400),
        ps in proptest::collection::vec(0.0f64..=1.0, 1..20),
        split in any::<usize>(),
    ) {
        use bnm::stats::QuantileSketch;

        // Build one sketch by straight insertion and one by merging two
        // halves: both must satisfy the bound (merge adds no error).
        let mut whole = QuantileSketch::default();
        whole.extend(&data);
        let cut = split % data.len();
        let mut left = QuantileSketch::default();
        left.extend(&data[..cut]);
        let mut right = QuantileSketch::default();
        right.extend(&data[cut..]);
        left.merge(&right);

        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let scale = sorted.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        for sk in [&whole, &left] {
            prop_assert_eq!(sk.count(), data.len() as u64);
            let bound = sk.relative_error_bound() * scale + 1e-8;
            for &p in &ps {
                let exact = quantile(&sorted, p);
                let est = sk.quantile(p);
                prop_assert!(
                    (est - exact).abs() <= bound,
                    "p={}: sketch {} vs exact {} (bound {})", p, est, exact, bound
                );
            }
            // Extremes are exact: the sketch tracks min/max directly.
            prop_assert_eq!(sk.quantile(0.0), sorted[0]);
            prop_assert_eq!(sk.quantile(1.0), sorted[sorted.len() - 1]);
        }
    }

    #[test]
    fn cdf_levels_masses_sum_to_one(data in proptest::collection::vec(-100f64..100.0, 1..80), tol in 0.1f64..20.0) {
        let c = Cdf::of(&data);
        let levels = c.levels(tol);
        let total: f64 = levels.iter().map(|(_, m)| m).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Level centers are strictly increasing.
        for w in levels.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    // ---------- time & delay models ----------

    #[test]
    fn sim_time_arithmetic_is_consistent(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a);
        let dur = SimDuration::from_nanos(d);
        let t2 = t + dur;
        prop_assert_eq!(t2.saturating_since(t), dur);
        prop_assert_eq!(t2.signed_millis_since(t), d as f64 / 1e6);
        prop_assert_eq!(t.signed_millis_since(t2), -(d as f64) / 1e6);
    }

    #[test]
    fn delay_model_respects_its_floor(floor in 0.0f64..10_000.0, median in 0.0f64..10_000.0, sigma in 0.0f64..2.0, seed in any::<u64>()) {
        use bnm::browser::DelayModel;
        let m = DelayModel::lognorm(floor, median, sigma);
        let mut rng = bnm::sim::rng::stream(seed, "prop");
        for _ in 0..20 {
            let s = m.sample(&mut rng);
            prop_assert!(s.as_nanos() as f64 >= floor * 1e3 - 1.0);
        }
    }

    #[test]
    fn gettime_is_monotone_nondecreasing(seed in any::<u64>(), steps in proptest::collection::vec(1u64..10_000_000, 1..50)) {
        use bnm::timeapi::{make_api, MachineTimer, OsKind, TimingApiKind};
        let machine = MachineTimer::new(OsKind::Windows7, seed);
        let mut api = make_api(TimingApiKind::JavaDateGetTime, &machine);
        let mut t = SimTime::ZERO;
        let mut last = api.read(t);
        for step in steps {
            t += SimDuration::from_nanos(step);
            let v = api.read(t);
            prop_assert!(v >= last, "clock went backwards: {} -> {}", last, v);
            last = v;
        }
    }

    #[test]
    fn granularity_quantization_error_is_bounded(seed in any::<u64>(), t_ns in 0u64..3_600_000_000_000) {
        use bnm::timeapi::{MachineTimer, OsKind};
        let machine = MachineTimer::new(OsKind::Windows7, seed);
        let t = SimTime::from_nanos(t_ns);
        let reported = machine.system_time_ms(t) as i128 - machine.epoch_ms() as i128;
        let actual = (t_ns / 1_000_000) as i128;
        let g_ms = (machine.system_granularity(t).as_nanos() / 1_000_000) as i128;
        // The reported clock lags actual time by at most one granule.
        prop_assert!(reported <= actual + 1);
        prop_assert!(actual - reported <= g_ms + 1, "lag {} > granule {}", actual - reported, g_ms);
    }
}

// ---------- scheduler equivalence ----------
//
// The engine's hierarchical timer wheel must be observationally
// identical to the reference `BinaryHeap` scheduler: for ANY
// interleaving of inserts and pops, both return the same events in the
// same `(time, seq)` order. The heap is the executable specification;
// the wheel is the optimisation. Determinism of every simulation rests
// on this.
proptest! {
    #[test]
    fn timer_wheel_matches_reference_heap(
        ops in proptest::collection::vec(any::<u64>(), 1..300),
    ) {
        use bnm::sim::event::{Event, EventKind, EventQueue};

        fn check_pop(wheel: &mut EventQueue, heap: &mut EventQueue) {
            let key = |e: &Event| (e.at, e.seq);
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(
                w.as_ref().map(key),
                h.as_ref().map(key),
                "wheel and heap diverged"
            );
        }

        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::reference_heap();
        // Each sampled word encodes one step: bit 0 chooses pop-then-push
        // vs push; bits 1..7 pick a magnitude shift so event times span
        // every wheel level (nanoseconds up to the full u64 range, with
        // plenty of exact duplicates at large shifts); the rotated word
        // is the raw timestamp.
        for (i, raw) in ops.into_iter().enumerate() {
            if raw & 1 == 1 {
                check_pop(&mut wheel, &mut heap);
            }
            let shift = ((raw >> 1) & 63) as u32;
            let at = SimTime::from_nanos(raw.rotate_left(7) >> shift);
            let kind = EventKind::Timer { node: 0, token: i as u64 };
            wheel.push(at, kind.clone());
            heap.push(at, kind);
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain both completely; the tails must agree too.
        while !wheel.is_empty() || !heap.is_empty() {
            check_pop(&mut wheel, &mut heap);
        }
        check_pop(&mut wheel, &mut heap); // both report empty
    }
}

// ---------- link dynamics ----------
//
// The lazily-evaluated rate schedule must conserve bytes: the rate in
// force at any instant never exceeds `max_rate`, and because every
// serialization span is rounded *up*, no window of virtual time can
// deliver more than `max_rate × span` bits back-to-back. This is the
// bound the bufferbloat appraisal leans on — a schedule can starve a
// queue but never smuggle extra capacity in.
proptest! {
    #[test]
    fn rate_schedule_conserves_bytes(
        kind in 0u8..3,
        raw_steps in proptest::collection::vec(any::<u64>(), 0..16),
        period in 1u64..1_000_000_000,
        on_permille in 0u64..=1000,
        on_bps in 1u64..100_000_000,
        base_bps in 1u64..100_000_000,
        frames in proptest::collection::vec(1usize..1500, 1..50),
        probes in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        use bnm::RateSchedule;

        // The shim has no one-of combinator, so the schedule variant and
        // its parameters are sampled as primitives and assembled here.
        let schedule = match kind {
            0 => RateSchedule::Static,
            1 => {
                let mut steps: Vec<(SimTime, u64)> = raw_steps
                    .chunks_exact(2)
                    .map(|w| {
                        (
                            SimTime::from_nanos(w[0] % 60_000_000_000),
                            w[1] % 99_999_999 + 1,
                        )
                    })
                    .collect();
                steps.sort_by_key(|(t, _)| *t);
                steps.dedup_by_key(|(t, _)| *t);
                RateSchedule::Steps(steps)
            }
            _ => RateSchedule::OnOff {
                period: SimDuration::from_nanos(period),
                on: SimDuration::from_nanos(period * on_permille / 1000),
                on_bps,
            },
        };
        prop_assert!(schedule.validate().is_ok());
        let max = schedule.max_rate(base_bps);

        // At any probe instant the rate is positive and bounded, and the
        // static schedule is exactly the base rate.
        for raw in probes {
            let t = SimTime::from_nanos(raw);
            let rate = schedule.rate_at(t, base_bps);
            prop_assert!(rate >= 1);
            prop_assert!(rate <= max);
            if matches!(schedule, RateSchedule::Static) {
                prop_assert_eq!(rate, base_bps);
            }
        }

        // Serialize the frames back-to-back under the lazy rule the link
        // uses (rate sampled when serialization starts) and check the
        // conservation bound in exact integer arithmetic.
        let mut now = SimTime::ZERO;
        let mut bits: u128 = 0;
        for bytes in frames {
            let rate = schedule.rate_at(now, base_bps);
            now += SimDuration::serialization(bytes, rate);
            bits += bytes as u128 * 8;
        }
        prop_assert!(
            bits * 1_000_000_000 <= max as u128 * now.as_nanos() as u128,
            "delivered {} bits in {} ns at max rate {} bps",
            bits, now.as_nanos(), max
        );
    }
}

// An all-static schedule — explicit specs plus a `Steps` schedule with
// no change-points — must be bit-identical to the plain fixed-rate cell
// at EVERY seed, not just the one the deterministic parity test pins.
// One repetition per side keeps the whole-cell runs cheap.
proptest! {
    #[test]
    fn all_static_schedule_is_bit_identical_to_fixed_rate(seed in any::<u64>()) {
        use bnm::prelude::*;
        use bnm::sim::link::LinkSpec;
        use bnm::{LinkDynamics, LinkShape, RateSchedule};

        let build = |shaped: bool| {
            let b = ExperimentCell::builder(
                MethodId::WebSocket,
                RuntimeSel::Browser(BrowserKind::Chrome),
                OsKind::Ubuntu1204,
            )
            .reps(1)
            .seed(seed);
            let b = if shaped {
                b.link_shape(LinkShape {
                    down_spec: Some(LinkSpec::fast_ethernet()),
                    up_spec: Some(LinkSpec::fast_ethernet()),
                    down: LinkDynamics::scheduled(RateSchedule::Steps(Vec::new())),
                    up: LinkDynamics::scheduled(RateSchedule::Steps(Vec::new())),
                })
            } else {
                b
            };
            b.build().unwrap()
        };
        let plain = ExperimentRunner::try_run(&build(false)).unwrap();
        let shaped = ExperimentRunner::try_run(&build(true)).unwrap();
        prop_assert_eq!(plain.d1, shaped.d1);
        prop_assert_eq!(plain.d2, shaped.d2);
        prop_assert_eq!(plain.measurements, shaped.measurements);
        prop_assert_eq!(plain.link, shaped.link);
    }
}
