//! End-to-end guarantees of the impairment subsystem:
//!
//! 1. **Fault rates compose** — the injector's empirical drop /
//!    corruption / duplication rates match the configured chances,
//!    accounting for the draw order (corruption is only drawn for
//!    surviving frames, duplication only for uncorrupted survivors).
//! 2. **Exclusion rule** — a lossy cell excludes every round whose
//!    probe was retransmitted on the wire, counts them, and keeps the
//!    attribution closure (< 1 µs residual, zero retrans component) on
//!    the rounds it reports.
//! 3. **Determinism** — impaired cells are bit-identical between
//!    serial and parallel execution, and across repeated runs.
//! 4. **The knob at rest is invisible** — an explicit
//!    [`Impairment::NONE`] produces byte-identical output to a cell
//!    that never mentions impairment.

#![deny(deprecated)]

use bytes::Bytes;
use proptest::prelude::*;

use bnm::prelude::*;
use bnm::sim::fault::{FaultAction, FaultInjector};
use bnm::sim::rng;
use bnm::sim::time::SimDuration;

fn lossy_cell(loss: f64, reps: u32) -> ExperimentCell {
    ExperimentCell::builder(
        MethodId::WebSocket,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(reps)
    .seed(0xB32B_10CC)
    .impairment(Impairment::loss(loss))
    .trace(true)
    .build()
    .unwrap()
}

proptest! {
    /// Empirical fault rates over many frames track the configured
    /// chances. Because the injector draws drop → corrupt → duplicate,
    /// the expected corruption rate is `(1−d)·c` and the expected
    /// duplication rate `(1−d)·(1−c)·p`.
    #[test]
    fn fault_rates_compose_as_conditional_probabilities(
        drop_pct in 0u32..=30,
        corrupt_pct in 0u32..=30,
        dup_pct in 0u32..=30,
        seed in any::<u64>(),
    ) {
        let d = f64::from(drop_pct) / 100.0;
        let c = f64::from(corrupt_pct) / 100.0;
        let p = f64::from(dup_pct) / 100.0;
        let spec = FaultSpec {
            drop_chance: d,
            corrupt_chance: c,
            duplicate_chance: p,
            ..FaultSpec::CLEAN
        };
        let mut inj = FaultInjector::new(spec, rng::stream(seed, "fault.prop"));
        const N: u64 = 20_000;
        for _ in 0..N {
            match inj.apply(Bytes::from_static(b"sixteen payload!")) {
                FaultAction::Drop
                | FaultAction::Deliver(_)
                | FaultAction::DeliverCorrupted(_)
                | FaultAction::Duplicate(_) => {}
            }
        }
        let (drops, corruptions, duplicates) = inj.counters();
        let n = N as f64;
        // Binomial σ ≤ 0.5/√N ≈ 0.0035; 5σ gives a comfortably
        // flake-free tolerance.
        let tol = 0.018;
        prop_assert!((drops as f64 / n - d).abs() < tol, "drop rate {}", drops as f64 / n);
        prop_assert!(
            (corruptions as f64 / n - (1.0 - d) * c).abs() < tol,
            "corrupt rate {}",
            corruptions as f64 / n
        );
        prop_assert!(
            (duplicates as f64 / n - (1.0 - d) * (1.0 - c) * p).abs() < tol,
            "duplicate rate {}",
            duplicates as f64 / n
        );
    }
}

/// The tentpole e2e: a lossy WebSocket cell excludes retransmitted
/// rounds (counting them), never folds an RTO into Δd, and keeps the
/// attribution closure on every round it reports.
#[test]
fn lossy_websocket_excludes_retransmitted_rounds_and_keeps_closure() {
    let reps = 40;
    let r = ExperimentRunner::try_run(&lossy_cell(0.05, reps)).unwrap();
    assert!(
        r.excluded_rounds > 0,
        "5% loss over {reps} reps must retransmit at least once"
    );
    assert_eq!(r.failures, 0, "loss must exclude rounds, not fail reps");
    // Every round is either measured or excluded — none vanish.
    assert_eq!(
        r.d1.len() + r.d2.len() + r.excluded_rounds as usize,
        2 * reps as usize
    );
    assert_eq!(r.attributions.len(), r.measurements.len());
    for a in &r.attributions {
        // A retransmission costs a whole RTO (hundreds of ms). An
        // included round must show neither the wait itself …
        assert_eq!(
            a.retrans_ms, 0.0,
            "rep {} round {}: retransmitted round leaked past the matcher",
            a.rep, a.round
        );
        // … nor any unexplained remainder.
        assert!(
            a.residual_ms.abs() < 1e-3,
            "rep {} round {}: residual {} ms",
            a.rep,
            a.round,
            a.residual_ms
        );
    }
    // And the included Δd stay in the clean WebSocket regime: far below
    // the ~200 ms RTO a leaked retransmission would add.
    for &d in r.d1.iter().chain(&r.d2) {
        assert!(d < 50.0, "Δd {d} ms looks like an absorbed retransmission");
    }
}

/// Corruption and duplication exercise the other two exclusion paths:
/// a corrupted probe dies at the receiver's checksum (acting as loss),
/// a duplicated response hits the client capture twice. Both must be
/// excluded, not absorbed.
#[test]
fn corruption_and_duplication_are_excluded_like_loss() {
    let imp = Impairment {
        up: FaultSpec {
            corrupt_chance: 0.05,
            ..FaultSpec::CLEAN
        },
        down: FaultSpec {
            duplicate_chance: 0.05,
            ..FaultSpec::CLEAN
        },
        jitter: SimDuration::ZERO,
    };
    let cell = ExperimentCell::builder(
        MethodId::WebSocket,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(40)
    .seed(0xB32B_C0DE)
    .impairment(imp)
    .build()
    .unwrap();
    let r = ExperimentRunner::try_run(&cell).unwrap();
    assert!(
        r.excluded_rounds > 0,
        "corruption/duplication must exclude rounds"
    );
    assert_eq!(r.failures, 0);
    for &d in r.d1.iter().chain(&r.d2) {
        assert!(d < 50.0, "Δd {d} ms on an included round");
    }
}

/// Jitter spreads Δd without breaking anything: the included rounds
/// still match and the spread stays within the jitter bound.
#[test]
fn jitter_spreads_delta_d_within_the_bound() {
    let jitter = SimDuration::from_millis(2);
    let cell = ExperimentCell::builder(
        MethodId::WebSocket,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(20)
    .seed(0xB32B_717E)
    .impairment(Impairment::NONE.with_jitter(jitter))
    .build()
    .unwrap();
    let jittered = ExperimentRunner::try_run(&cell).unwrap();
    let clean = ExperimentRunner::try_run(&cell.clone().with_impairment(Impairment::NONE)).unwrap();
    assert_eq!(jittered.failures, 0);
    assert_eq!(
        jittered.excluded_rounds, 0,
        "jitter alone never retransmits"
    );
    assert_ne!(jittered.d1, clean.d1, "2 ms of jitter must be visible");
    // Jitter delays the response by at most `bound`, so Δd (browser
    // minus wire interval) can move by at most that much either way.
    for (j, c) in jittered.pooled().iter().zip(clean.pooled()) {
        assert!((j - c).abs() <= 2.0 + 1e-9, "jittered {j} vs clean {c}");
    }
}

/// Impaired cells keep the executor's bit-identical parallel/serial
/// guarantee: the fault and jitter streams derive from (seed, rep)
/// alone, so scheduling cannot leak into the numbers.
#[test]
fn impaired_cells_are_bit_identical_across_schedulers_and_runs() {
    let cells = vec![lossy_cell(0.03, 12), lossy_cell(0.05, 12)];
    let serial = Executor::serial().run(&cells);
    let parallel = Executor::with_workers(4).run(&cells);
    let again = Executor::with_workers(2).run(&cells);
    for ((s, p), a) in serial.iter().zip(&parallel).zip(&again) {
        let (s, p, a) = (
            s.as_ref().unwrap(),
            p.as_ref().unwrap(),
            a.as_ref().unwrap(),
        );
        for other in [p, a] {
            assert_eq!(s.d1, other.d1);
            assert_eq!(s.d2, other.d2);
            assert_eq!(s.excluded_rounds, other.excluded_rounds);
            assert_eq!(s.failures, other.failures);
            assert_eq!(s.traces.len(), other.traces.len());
            for (st, ot) in s.traces.iter().zip(&other.traces) {
                assert_eq!(st.to_json(), ot.to_json());
            }
        }
    }
}
