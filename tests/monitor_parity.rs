//! Tier-1 guarantees of the continuous-monitoring layer:
//!
//! 1. **Windowed-vs-batch parity** — a monitor stepped N rounds over an
//!    impaired 200-client crowd reports, in every window, sketch
//!    quantiles that agree with the exact R-7 quantiles of the
//!    equivalent batch repetitions' samples within the sketch's
//!    documented relative-error bound, and exact counts/extremes that
//!    match bit-for-bit.
//! 2. **Window rotation** — tumbling and sliding windows drop whole
//!    pans exactly at their span boundary, and `run_for` is
//!    bit-identical to the same number of explicit `step`s.
//! 3. **Serial/parallel snapshot parity** — `CellResult::summary`
//!    produces `==` [`ReportSnapshot`]s whether the executor ran with
//!    one worker or many, and two identically-stepped monitors are
//!    `==` too.
//! 4. **Bounded memory** — a 1,000-round monitored run's footprint
//!    gauges (live pans, sketch buckets) saturate by round 100 and stay
//!    flat to round 1,000, while the lifetime quantiles still agree
//!    with a 1,000-rep batch run within the error bound.
//! 5. **Bounded-retention exactness** — `SessionSamples::quantile`
//!    under `StreamingSpec::bounded(k)` returns the exact R-7 answer
//!    whenever every sample was retained (`count <= k`).

use bnm::core::report::DistSummary;
use bnm::prelude::*;
use bnm::sim::time::SimDuration;

/// Absolute slack added to every relative-error comparison so bounds
/// around zero-valued quantiles stay meaningful.
const ZERO_EPSILON: f64 = 1e-9;

/// Assert a sketch-derived quantile agrees with the exact value within
/// the sketch's relative-error bound.
fn assert_within(got: f64, exact: f64, eps: f64, what: &str) {
    let tol = eps * got.abs().max(exact.abs()) + ZERO_EPSILON;
    assert!(
        (got - exact).abs() <= tol,
        "{what}: sketch {got} vs exact {exact} (tol {tol})"
    );
}

/// Assert a window's digest agrees with the exact distribution of
/// `samples`: counts and extremes bit-for-bit (the sketch tracks them
/// exactly), every probed quantile within the error bound.
fn assert_digest_matches(got: &DistSummary, samples: &[f64], eps: f64, what: &str) {
    let exact = DistSummary::of_samples(samples);
    assert_eq!(got.count, exact.count, "{what}: count");
    if samples.is_empty() {
        return;
    }
    assert_eq!(got.min, exact.min, "{what}: min");
    assert_eq!(got.max, exact.max, "{what}: max");
    assert_within(got.mean, exact.mean, eps, &format!("{what}: mean"));
    for (g, e, p) in [
        (got.p10, exact.p10, "p10"),
        (got.p25, exact.p25, "p25"),
        (got.p50, exact.p50, "p50"),
        (got.p75, exact.p75, "p75"),
        (got.p90, exact.p90, "p90"),
        (got.p99, exact.p99, "p99"),
    ] {
        assert_within(g, e, eps, &format!("{what}: {p}"));
    }
}

/// Split one repetition's measurements into (d1, d2) sample vectors —
/// every session of the crowd, exactly what the monitor folds.
fn rep_samples(rep: &RepOutcome) -> (Vec<f64>, Vec<f64>) {
    let mut d1 = Vec::new();
    let mut d2 = Vec::new();
    for m in &rep.measurements {
        match m.round {
            1 => d1.push(m.delta_d_ms()),
            _ => d2.push(m.delta_d_ms()),
        }
    }
    (d1, d2)
}

fn find_window<'a>(snap: &'a ReportSnapshot, label: &str) -> &'a bnm::core::WindowReport {
    snap.windows
        .iter()
        .find(|w| w.label == label)
        .unwrap_or_else(|| panic!("no window {label:?}"))
}

/// (1) The headline parity claim: a 200-client impaired crowd, three
/// monitored rounds, every window's quantiles checked against exact
/// R-7 over the same repetitions' samples.
#[test]
fn windowed_quantiles_match_exact_batch_within_bound() {
    let cell = ExperimentCell::builder(
        MethodId::XhrGet,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(3)
    .seed(0xB32B_6001)
    .contention(ContentionSpec::clients(200).with_server_link_rate(6_250 * 200))
    .impairment(Impairment::loss(0.02))
    .streaming(StreamingSpec::serve())
    .build()
    .unwrap();

    // Exact reference: the same repetitions the monitor replays,
    // collected per-rep so per-window membership is known.
    let reps: Vec<RepOutcome> = (0..3)
        .map(|r| ExperimentRunner::run_rep_traced(&cell, r).expect("rep runs"))
        .collect();
    let per_rep: Vec<(Vec<f64>, Vec<f64>)> = reps.iter().map(rep_samples).collect();
    let all_d1: Vec<f64> = per_rep.iter().flat_map(|(d1, _)| d1.clone()).collect();
    let all_d2: Vec<f64> = per_rep.iter().flat_map(|(_, d2)| d2.clone()).collect();
    assert!(
        all_d1.len() >= 200,
        "crowd should yield at least one d1 sample per client"
    );

    let mut monitor = Monitor::new(cell).unwrap();
    for _ in 0..3 {
        monitor.step();
    }
    let snap = monitor.snapshot();
    let eps = snap.relative_error_bound;
    assert!(eps > 0.0 && eps < 0.05, "documented bound is small: {eps}");

    // The 10s / 1m windows and the lifetime digest all cover rounds
    // 0..3 (recorded at t = 0, 1, 2 s).
    for label in ["10s", "1m", "total"] {
        let w = find_window(&snap, label);
        assert_eq!(w.rounds, 3, "{label}: rounds");
        assert_digest_matches(&w.d1, &all_d1, eps, &format!("{label}/d1"));
        assert_digest_matches(&w.d2, &all_d2, eps, &format!("{label}/d2"));
        let pooled: Vec<f64> = all_d1.iter().chain(&all_d2).copied().collect();
        assert_digest_matches(&w.pooled, &pooled, eps, &format!("{label}/pooled"));
    }

    // The tumbling 1 s window holds only the last round.
    let w1 = find_window(&snap, "1s");
    assert_eq!(w1.rounds, 1);
    assert_digest_matches(&w1.d1, &per_rep[2].0, eps, "1s/d1");
    assert_digest_matches(&w1.d2, &per_rep[2].1, eps, "1s/d2");

    // Exclusions under 2% loss fold into the counters identically.
    let total_excluded: u64 = reps.iter().map(|r| r.excluded as u64).sum();
    assert_eq!(snap.excluded_rounds, total_excluded);
    assert_eq!(find_window(&snap, "total").excluded_rounds, total_excluded);
}

/// (2) Rotation boundaries: pans drop exactly at span edges, and
/// `run_for` equals explicit stepping bit-for-bit.
#[test]
fn window_rotation_boundary_and_stepping_parity() {
    let cell = ExperimentCell::builder(
        MethodId::XhrGet,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(1)
    .seed(0xB32B_6002)
    .build()
    .unwrap();
    let cfg = MonitorConfig {
        window_pans: vec![1, 2],
        ..MonitorConfig::default()
    };

    let mut stepped = Monitor::with_config(cell.clone(), cfg.clone()).unwrap();
    let mut boundary_counts = Vec::new();
    for _ in 0..5 {
        stepped.step();
        let snap = stepped.snapshot();
        boundary_counts.push((
            find_window(&snap, "1s").rounds,
            find_window(&snap, "2s").rounds,
        ));
    }
    // Tumbling 1-pan window always holds exactly the last round; the
    // 2-pan window grows to two rounds and then slides.
    assert_eq!(
        boundary_counts,
        vec![(1, 1), (1, 2), (1, 2), (1, 2), (1, 2)]
    );
    let snap = stepped.snapshot();
    assert_eq!(snap.total().rounds, 5, "lifetime keeps everything");
    assert_eq!(find_window(&snap, "1s").d1.count, 1);
    assert_eq!(find_window(&snap, "2s").d1.count, 2);
    assert_eq!(snap.total().d1.count, 5);

    let mut ran = Monitor::with_config(cell, cfg).unwrap();
    ran.run_for(SimDuration::from_secs(5));
    assert_eq!(
        ran.snapshot(),
        snap,
        "run_for(5s) == five explicit steps, bit-for-bit"
    );
}

/// (3) The summary shape is executor-schedule-independent: serial and
/// parallel runs produce `==` snapshots.
#[test]
fn serial_and_parallel_summaries_are_bit_identical() {
    let cell = ExperimentCell::builder(
        MethodId::XhrGet,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(4)
    .seed(0xB32B_6003)
    .contention(ContentionSpec::clients(16).with_server_link_rate(2_000_000))
    .impairment(Impairment::loss(0.03))
    .streaming(StreamingSpec::bounded(8))
    .build()
    .unwrap();

    let run = |workers: usize| {
        let mut results = Executor::with_workers(workers).run(std::slice::from_ref(&cell));
        results.pop().unwrap().expect("cell runs")
    };
    let serial = run(1).summary(&cell);
    let parallel = run(4).summary(&cell);
    assert_eq!(serial, parallel, "summary must not depend on scheduling");
    assert!(serial.total().pooled.count > 0);
    assert!(serial.verdict().is_some());
}

/// (4) Memory stays bounded over a long monitored run: the footprint
/// gauges saturate and the lifetime quantiles remain within the bound
/// of an exact 1,000-rep batch run.
#[test]
fn thousand_round_run_holds_footprint_flat() {
    let cell = ExperimentCell::builder(
        MethodId::XhrGet,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(1000)
    .seed(0xB32B_6004)
    .streaming(StreamingSpec::serve())
    .build()
    .unwrap();

    let mut monitor = Monitor::new(cell.clone()).unwrap();
    monitor.run_for(SimDuration::from_secs(100));
    let at_100 = monitor.footprint();
    monitor.run_for(SimDuration::from_secs(900));
    let at_1000 = monitor.footprint();

    // Pans are bounded by the window spans (1 + 10 + 60 per series),
    // not the round count: identical at rounds 100 and 1,000.
    assert_eq!(at_100.sketch_pans, at_1000.sketch_pans, "sketch pans grew");
    assert_eq!(
        at_100.counter_pans, at_1000.counter_pans,
        "counter pans grew"
    );
    assert_eq!(at_1000.sketch_pans, 2 * (1 + 10 + 60));
    // Buckets are bounded by the sketch resolution over the value
    // range; 10x the rounds must not mean 10x the buckets.
    assert!(
        at_1000.sketch_buckets <= 2 * at_100.sketch_buckets,
        "sketch buckets {} -> {} (not bounded)",
        at_100.sketch_buckets,
        at_1000.sketch_buckets
    );

    // And the accuracy contract still holds at round 1,000: lifetime
    // quantiles agree with the exact batch distribution of the same
    // 1,000 repetitions.
    let batch = ExperimentRunner::try_run(&cell).unwrap();
    let snap = monitor.snapshot();
    assert_eq!(snap.rounds, 1000);
    let eps = snap.relative_error_bound;
    // serve() retention truncates the batch flat vectors at 64, but the
    // per-session sketches saw every sample — compare via the session's
    // quantile API (exact-or-sketch) against the monitor's digests.
    let session = &batch.sessions[0];
    for (round, digest) in [(1u8, &snap.total().d1), (2u8, &snap.total().d2)] {
        assert_eq!(digest.count, session.count(round), "round {round} count");
        for p in [0.10, 0.50, 0.90] {
            let got = match p {
                0.10 => digest.p10,
                0.50 => digest.p50,
                _ => digest.p90,
            };
            // Both sides carry the sketch bound, so allow it twice.
            let exact = session.quantile(round, p);
            assert_within(got, exact, 2.0 * eps, &format!("round {round} p{p}"));
        }
    }
}

/// (5) The bounded-retention quantile bugfix: when `count <= k`, the
/// raw vector retained every sample and `quantile` must be the exact
/// R-7 answer bit-for-bit, not the sketch estimate.
#[test]
fn bounded_retention_prefers_exact_quantiles_when_complete() {
    let cell = ExperimentCell::builder(
        MethodId::XhrGet,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(6)
    .seed(0xB32B_6005)
    .streaming(StreamingSpec::bounded(8))
    .build()
    .unwrap();
    let result = ExperimentRunner::try_run(&cell).unwrap();
    let session = &result.sessions[0];
    assert!(session.sketches.is_some(), "bounded mode sketches");
    for round in [1u8, 2] {
        let raw = match round {
            1 => &session.d1,
            _ => &session.d2,
        };
        assert_eq!(raw.len(), 6, "retention 8 keeps all 6 samples");
        let exact = DistSummary::of_samples(raw);
        assert_eq!(session.quantile(round, 0.10), exact.p10, "round {round}");
        assert_eq!(session.quantile(round, 0.50), exact.p50, "round {round}");
        assert_eq!(session.quantile(round, 0.90), exact.p90, "round {round}");
    }
}
