//! End-to-end coverage of the `RunError` taxonomy through the public
//! (facade) API — every variant a caller can provoke, provoked.

#![deny(deprecated)]

use bnm::core::error::RunError;
use bnm::core::matching::{match_round, MatchError};
use bnm::core::sweep::slope;
use bnm::prelude::*;
use bnm::sim::capture::CaptureBuffer;

fn ie9_websocket() -> ExperimentCell {
    ExperimentCell::builder(
        MethodId::WebSocket,
        RuntimeSel::Browser(BrowserKind::Ie9),
        OsKind::Windows7,
    )
    .reps(2)
    .build_unchecked()
}

#[test]
fn unrunnable_surfaces_from_every_entry_point() {
    let cell = ie9_websocket();
    let want = RunError::unrunnable(&cell);
    assert_eq!(ExperimentRunner::try_run(&cell).unwrap_err(), want);
    assert_eq!(ExperimentRunner::run_rep(&cell, 0).unwrap_err(), want);
    assert_eq!(
        ExperimentRunner::run_rep_traced(&cell, 0).unwrap_err(),
        want
    );
    let batch = Executor::new().run(std::slice::from_ref(&cell));
    assert_eq!(batch[0].as_ref().unwrap_err(), &want);
    assert_eq!(want.to_string(), "IE (W) cannot run WebSocket");
}

#[test]
fn invalid_round_from_result_selection() {
    let cell = ExperimentCell::paper(
        MethodId::WebSocket,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .with_reps(1);
    let r = ExperimentRunner::try_run(&cell).unwrap();
    assert_eq!(r.round(0).unwrap_err(), RunError::InvalidRound(0));
    assert_eq!(r.round(3).unwrap_err(), RunError::InvalidRound(3));
    assert!(r.round(1).is_ok() && r.round(2).is_ok());
}

#[test]
fn insufficient_data_from_slope_fitting() {
    assert_eq!(
        slope(&[(50.0, 1.0)]).unwrap_err(),
        RunError::InsufficientData { needed: 2, got: 1 }
    );
    assert_eq!(
        slope(&[]).unwrap_err(),
        RunError::InsufficientData { needed: 2, got: 0 }
    );
    assert!(slope(&[(10.0, 1.0), (20.0, 2.0)]).is_ok());
}

#[test]
fn match_errors_wrap_into_run_errors() {
    // An empty capture can never contain the request marker.
    let empty = CaptureBuffer::new("empty");
    let e = match_round(&empty, MethodId::XhrGet, 1, 0).unwrap_err();
    assert_eq!(e, MatchError::RequestNotFound);
    let wrapped: RunError = e.into();
    assert_eq!(wrapped, RunError::Match(MatchError::RequestNotFound));
    assert!(std::error::Error::source(&wrapped).is_some());
}

#[test]
fn invalid_input_from_builders() {
    let zero = ExperimentCell::builder(
        MethodId::XhrGet,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(0)
    .build();
    assert_eq!(
        zero.unwrap_err(),
        RunError::InvalidInput("reps must be >= 1")
    );
    let tb_err = match Testbed::builder().build() {
        Ok(_) => panic!("empty testbed builder must not validate"),
        Err(e) => e,
    };
    assert_eq!(tb_err, RunError::InvalidInput("a probe plan is required"));
}

#[test]
fn no_samples_from_empty_appraisal() {
    let empty = CellResult::default();
    assert_eq!(Appraisal::try_of(&empty).unwrap_err(), RunError::NoSamples);
}
