//! Tier-1 guarantees of the streaming post-processing pipeline:
//!
//! 1. **Streaming parity** — a cell run with streaming capture
//!    consumption ([`StreamingSpec::streaming`]) is bit-identical to the
//!    batch pipeline: the marker sinks observe exactly the records a
//!    retaining tap would store (same noise-stamped timestamps, same
//!    snaplen truncation) and replay the same matching decision order.
//!    Asserted on clean, impaired and noisy-capture cells, single- and
//!    multi-client.
//! 2. **Parallel-matching parity** — batch-path per-session matching is
//!    bit-identical between one worker and many: matching is
//!    per-session-independent, and results fold in ascending session
//!    order either way.
//! 3. **Bounded memory** — in streaming mode, the frame pool's
//!    live-buffer high-water mark does not grow with the client count,
//!    while batch retention does.
//! 4. **Bounded retention** — with a `session_retention` threshold the
//!    raw vectors truncate but the sketches still see every sample and
//!    report quantiles within their documented error bound.

use bnm::prelude::*;

fn base_cell(clients: u32, reps: u32) -> CellBuilder {
    ExperimentCell::builder(
        MethodId::XhrGet,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(reps)
    .seed(0xB32B_57E4)
    .contention(ContentionSpec::clients(clients).with_server_link_rate(2_000_000))
}

fn assert_bit_identical(a: &CellResult, b: &CellResult, what: &str) {
    assert_eq!(a.d1, b.d1, "{what}: d1");
    assert_eq!(a.d2, b.d2, "{what}: d2");
    assert_eq!(a.measurements, b.measurements, "{what}: measurements");
    assert_eq!(a.failures, b.failures, "{what}: failures");
    assert_eq!(a.excluded_rounds, b.excluded_rounds, "{what}: exclusions");
    assert_eq!(a.sessions.len(), b.sessions.len(), "{what}: session count");
    for (x, y) in a.sessions.iter().zip(&b.sessions) {
        assert_eq!(x, y, "{what}: session {}", x.session);
    }
}

/// (1) Streaming consumption is invisible in the output: clean cell,
/// impaired cell (exercising the server-side marker index), and a cell
/// with capture-timestamp noise (exercising stamp parity inside the
/// sink), for both the single-client testbed and a contended scenario.
#[test]
fn streaming_mode_is_bit_identical_to_batch() {
    let variants: Vec<(&str, ExperimentCell)> = vec![
        ("clean single", base_cell(1, 4).build().unwrap()),
        ("clean contended", base_cell(3, 3).build().unwrap()),
        (
            "impaired single",
            base_cell(1, 6)
                .impairment(Impairment::loss(0.08))
                .build()
                .unwrap(),
        ),
        (
            "impaired contended",
            base_cell(3, 4)
                .impairment(Impairment::loss(0.05))
                .build()
                .unwrap(),
        ),
        (
            "noisy capture",
            base_cell(2, 3).capture_noise_ns(400_000).build().unwrap(),
        ),
    ];
    for (what, batch) in variants {
        let streaming = batch.clone().with_streaming(StreamingSpec::streaming());
        let a = ExperimentRunner::try_run(&batch).unwrap();
        let b = ExperimentRunner::try_run(&streaming).unwrap();
        assert_bit_identical(&a, &b, what);
    }
}

/// (1b) An impaired cell actually excludes rounds in this configuration
/// — otherwise the parity above would not be exercising the
/// retransmission paths at all.
#[test]
fn impaired_parity_cells_exercise_exclusions() {
    let cell = base_cell(3, 4)
        .impairment(Impairment::loss(0.05))
        .build()
        .unwrap();
    let r = ExperimentRunner::try_run(&cell).unwrap();
    assert!(
        r.excluded_rounds > 0 || r.failures > 0,
        "loss 5% produced neither exclusions nor failures; parity test is vacuous"
    );
}

/// (2) Parallel per-session matching folds to the serial bits: forcing
/// one worker and forcing several must agree on everything, including
/// which error a failing repetition reports.
#[test]
fn parallel_matching_is_bit_identical_to_serial() {
    for imp in [Impairment::NONE, Impairment::loss(0.04)] {
        let serial = base_cell(24, 2)
            .impairment(imp)
            .streaming(StreamingSpec::batch().with_match_workers(1))
            .build()
            .unwrap();
        let parallel = serial
            .clone()
            .with_streaming(StreamingSpec::batch().with_match_workers(4));
        let a = ExperimentRunner::try_run(&serial).unwrap();
        let b = ExperimentRunner::try_run(&parallel).unwrap();
        assert_bit_identical(&a, &b, "match workers 1 vs 4");
    }
}

/// (3) The reason streaming exists: with sinks consuming records at
/// capture time, the pool's live-buffer high-water mark tracks only
/// frames genuinely in flight inside the engine — it no longer carries
/// a full rep's worth of retained capture. Concretely:
///
/// * batch peak ≈ one rep's whole capture (scales with clients ×
///   rounds of traffic);
/// * streaming peak ≈ instantaneous queue depth, so the *per-client*
///   peak must not grow as the crowd does, and the absolute peak must
///   sit well below batch retention at scale.
///
/// Run serially so the drain happens on this thread and the pool gauge
/// is exact.
#[test]
fn streaming_bounds_the_frame_pool_high_water_mark() {
    let peak_of = |clients: u32, spec: StreamingSpec| {
        let cell = base_cell(clients, 1).streaming(spec).build().unwrap();
        let (results, stats) =
            Executor::serial().run_with_stats(std::slice::from_ref(&cell), |_| {});
        results[0].as_ref().unwrap();
        stats.pool.live_peak
    };

    let batch_small = peak_of(4, StreamingSpec::batch());
    let batch_big = peak_of(32, StreamingSpec::batch());
    let stream_small = peak_of(4, StreamingSpec::streaming());
    let stream_big = peak_of(32, StreamingSpec::streaming());

    assert!(
        batch_big > 2 * batch_small,
        "batch retention should grow with the crowd: {batch_small} -> {batch_big}"
    );
    assert!(
        4 * stream_big < batch_big,
        "streaming peak {stream_big} not well below batch peak {batch_big} at scale"
    );
    // In-flight frames may grow with concurrent sessions, but retention
    // must not: the per-client peak has to stay flat or shrink (small
    // slack for shared-queue effects).
    let per_client_small = stream_small as f64 / 4.0;
    let per_client_big = stream_big as f64 / 32.0;
    assert!(
        per_client_big <= per_client_small * 1.25,
        "streaming per-client peak grew {per_client_small:.2} -> \
         {per_client_big:.2}; retention is leaking"
    );
}

/// (4) Bounded retention: raw vectors cap at the threshold, sketches
/// cover every sample, and sketch quantiles sit within the documented
/// relative-error bound of the exact full-sample quantiles.
#[test]
fn bounded_retention_truncates_raw_and_sketches_all() {
    let full = base_cell(3, 8).build().unwrap();
    let bounded = full.clone().with_streaming(StreamingSpec::bounded(4));
    let a = ExperimentRunner::try_run(&full).unwrap();
    let b = ExperimentRunner::try_run(&bounded).unwrap();

    assert_eq!(a.sessions.len(), b.sessions.len());
    for (fs, bs) in a.sessions.iter().zip(&b.sessions) {
        assert_eq!(fs.d1.len(), 8);
        assert_eq!(bs.d1.len(), 4, "session {} raw d1 capped", bs.session);
        assert_eq!(bs.d2.len(), 4, "session {} raw d2 capped", bs.session);
        // The retained prefix is the same bits as the full run's prefix.
        assert_eq!(&fs.d1[..4], &bs.d1[..], "session {} prefix", bs.session);
        let sk = bs.sketches.as_ref().expect("bounded mode builds sketches");
        assert_eq!(sk.d1.count(), 8, "sketch saw every sample");
        assert_eq!(bs.count(1), 8);
        // Sketch quantiles track the exact full-sample R-7 quantiles.
        for round in [1u8, 2] {
            let exact_set = if round == 1 { &fs.d1 } else { &fs.d2 };
            let mut sorted = exact_set.clone();
            sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
            for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let exact = bnm::stats::summary::quantile(&sorted, p);
                let est = bs.quantile(round, p);
                let bound = sk.d1.relative_error_bound() * exact.abs().max(1e-9) + 1e-9;
                assert!(
                    (est - exact).abs() <= bound,
                    "session {} round {round} p{p}: {est} vs {exact} (bound {bound})",
                    bs.session
                );
            }
        }
    }
    // Bounded mode keeps measurement rows only for the reference session.
    assert!(b.measurements.iter().all(|m| m.session == 0));
    assert_eq!(a.d1.len(), 8);
    assert_eq!(b.d1.len(), 4, "flat d1 truncates like session 0's raw");
    // Exclusion counters are unaffected by retention.
    assert_eq!(a.excluded_rounds, b.excluded_rounds);
}
