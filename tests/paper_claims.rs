//! End-to-end verification of the paper's headline claims, each run
//! through the full pipeline: simulated testbed → capture → wire parsing
//! → Eq. 1 → statistics.
//!
//! These use reduced repetition counts (10–25) to stay fast; the bench
//! binaries run the full 50.

use bnm::browser::BrowserKind;
use bnm::core::appraisal::{Appraisal, Verdict};
use bnm::core::{CellResult, ExperimentCell, ExperimentRunner, RuntimeSel};
use bnm::methods::MethodId;
use bnm::stats::{Cdf, Summary};
use bnm::timeapi::{OsKind, TimingApiKind};

fn run(method: MethodId, browser: BrowserKind, os: OsKind, reps: u32) -> CellResult {
    let cell = ExperimentCell::paper(method, RuntimeSel::Browser(browser), os).with_reps(reps);
    ExperimentRunner::try_run(&cell).unwrap()
}

fn median(v: &[f64]) -> f64 {
    Summary::of(v).median
}

/// §4, headline: "the socket-based methods incur much lower delay
/// overhead than the HTTP-based methods in general".
#[test]
fn socket_methods_beat_http_methods() {
    let browser = BrowserKind::Chrome;
    let os = OsKind::Ubuntu1204;
    let socket_meds: Vec<f64> = [MethodId::WebSocket, MethodId::FlashTcp, MethodId::JavaTcp]
        .iter()
        .map(|&m| median(&run(m, browser, os, 15).pooled()))
        .collect();
    let http_meds: Vec<f64> = [
        MethodId::XhrGet,
        MethodId::XhrPost,
        MethodId::FlashGet,
        MethodId::FlashPost,
    ]
    .iter()
    .map(|&m| median(&run(m, browser, os, 15).pooled()))
    .collect();
    let worst_socket = socket_meds.iter().cloned().fold(f64::MIN, f64::max);
    let best_http = http_meds.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        worst_socket < best_http,
        "sockets {socket_meds:?} must all beat HTTP {http_meds:?}"
    );
    assert!(
        worst_socket < 3.0,
        "socket overheads are small: {socket_meds:?}"
    );
}

/// §4: "The Flash GET and POST methods are most unreliable, because their
/// overheads are the highest among all methods".
#[test]
fn flash_http_has_the_highest_overhead() {
    let browser = BrowserKind::Firefox;
    let os = OsKind::Windows7;
    let flash_get = median(&run(MethodId::FlashGet, browser, os, 15).d2);
    for m in [
        MethodId::XhrGet,
        MethodId::XhrPost,
        MethodId::Dom,
        MethodId::JavaGet,
    ] {
        let other = median(&run(m, browser, os, 15).d2);
        assert!(
            flash_get > other,
            "Flash GET Δd2 {flash_get} must exceed {m:?} {other}"
        );
    }
    assert!(
        flash_get > 20.0,
        "Flash overhead is tens of ms: {flash_get}"
    );
}

/// §4: "The DOM method achieves a better result than XHR and Flash. Most
/// of the median overheads are smaller than 5 ms" (on Ubuntu).
#[test]
fn dom_beats_xhr_and_stays_under_5ms_on_ubuntu() {
    for browser in [
        BrowserKind::Chrome,
        BrowserKind::Firefox,
        BrowserKind::Opera,
    ] {
        let dom = median(&run(MethodId::Dom, browser, OsKind::Ubuntu1204, 15).pooled());
        let xhr = median(&run(MethodId::XhrGet, browser, OsKind::Ubuntu1204, 15).pooled());
        assert!(dom < xhr, "{browser:?}: DOM {dom} < XHR {xhr}");
        assert!(dom < 5.0, "{browser:?}: DOM median {dom} < 5 ms");
    }
}

/// §4: "WebSocket provides the most accurate and consistent RTT
/// measurement in the context of JavaScript and DOM".
#[test]
fn websocket_is_accurate_and_consistent() {
    let r = run(
        MethodId::WebSocket,
        BrowserKind::Chrome,
        OsKind::Ubuntu1204,
        20,
    );
    let a = Appraisal::try_of(&r).unwrap();
    assert_eq!(a.verdict, Verdict::Accurate);
    assert!(a.pooled.median < 1.5, "median {}", a.pooled.median);
    assert!(a.pooled.iqr() < 2.0, "iqr {}", a.pooled.iqr());
}

/// Table 3 / §4.1: Opera's Flash GET pays a TCP handshake in Δd1 only;
/// POST pays it in every round. The handshake equals the simulated 50 ms.
#[test]
fn table3_handshake_arithmetic() {
    let get = run(MethodId::FlashGet, BrowserKind::Opera, OsKind::Windows7, 15);
    let post = run(
        MethodId::FlashPost,
        BrowserKind::Opera,
        OsKind::Windows7,
        15,
    );
    let get_d1 = median(&get.d1);
    let get_d2 = median(&get.d2);
    let post_d1 = median(&post.d1);
    let post_d2 = median(&post.d2);
    // Δd1 large for both (> 100 ms in the paper; > 85 here).
    assert!(get_d1 > 85.0, "GET Δd1 {get_d1}");
    assert!(post_d1 > 85.0, "POST Δd1 {post_d1}");
    // GET round 2 reuses: small. POST round 2 re-handshakes.
    assert!(get_d2 < 50.0, "GET Δd2 {get_d2}");
    assert!(post_d2 > 50.0, "POST Δd2 {post_d2}");
    // §4.1: POST Δd2 − 50 ≈ GET Δd2 (within a couple ms).
    assert!(
        (post_d2 - 50.0 - get_d2).abs() < 4.0,
        "POST Δd2 − 50 = {} vs GET Δd2 = {}",
        post_d2 - 50.0,
        get_d2
    );
    // Non-Opera browsers show no handshake in Δd1.
    let chrome = run(
        MethodId::FlashGet,
        BrowserKind::Chrome,
        OsKind::Windows7,
        15,
    );
    assert!(
        chrome
            .measurements
            .iter()
            .all(|m| !m.browser.opened_new_connection),
        "Chrome reuses connections"
    );
}

/// §4.2: Java's Date.getTime() under-estimates RTT on Windows (negative
/// Δd), but not on Ubuntu.
#[test]
fn java_gettime_underestimates_on_windows_only() {
    // Windows: at least one materially negative sample across browsers
    // (coarse regime cells).
    let mut windows_neg = 0;
    for b in [BrowserKind::Firefox, BrowserKind::Opera, BrowserKind::Ie9] {
        let r = run(MethodId::JavaTcp, b, OsKind::Windows7, 15);
        windows_neg += r.pooled().iter().filter(|&&d| d < -1.5).count();
    }
    assert!(windows_neg > 0, "Windows cells must under-estimate");
    // Ubuntu: 1 ms granularity bounds the error.
    for b in [BrowserKind::Chrome, BrowserKind::Firefox] {
        let r = run(MethodId::JavaTcp, b, OsKind::Ubuntu1204, 15);
        assert!(
            r.pooled().iter().all(|&d| d > -1.5),
            "Ubuntu Δd stays within clock resolution"
        );
    }
}

/// Figure 4 / §4.2: in a coarse-regime cell the Δd distribution has
/// discrete levels ~15.6 ms apart.
#[test]
fn figure4_discrete_levels_gap() {
    // Sweep browsers; at least one Windows cell must land coarse and show
    // a ~15.6 ms gap between its extreme levels.
    let mut found = false;
    for b in BrowserKind::ALL {
        let r = run(MethodId::JavaTcp, b, OsKind::Windows7, 25);
        let cdf = Cdf::of(&r.d1);
        let levels = cdf.levels(3.0);
        if levels.len() >= 2 {
            let gap = levels.last().unwrap().0 - levels.first().unwrap().0;
            if (13.0..=18.0).contains(&gap) {
                found = true;
                break;
            }
        }
    }
    assert!(
        found,
        "no Windows cell showed the ~15.6 ms two-level structure"
    );
}

/// Table 4 / §4.2: switching to System.nanoTime() removes the
/// under-estimation; socket overhead becomes capture-grade.
#[test]
fn table4_nanotime_fixes_java() {
    for method in MethodId::JAVA {
        let cell = ExperimentCell::paper(
            method,
            RuntimeSel::Browser(BrowserKind::Firefox),
            OsKind::Windows7,
        )
        .with_reps(15)
        .with_timing(TimingApiKind::JavaNanoTime);
        let r = ExperimentRunner::try_run(&cell).unwrap();
        assert!(
            r.pooled().iter().all(|&d| d > 0.0),
            "{method:?}: no negative Δd with nanoTime"
        );
        if method == MethodId::JavaTcp {
            let a = Appraisal::try_of(&r).unwrap();
            assert!(a.pooled.mean < 0.3, "socket mean {}", a.pooled.mean);
            assert_eq!(a.verdict, Verdict::Accurate);
        }
    }
    // And Table 4's asymmetries: GET Δd2 > Δd1, POST Δd2 < Δd1.
    let get = ExperimentRunner::try_run(
        &ExperimentCell::paper(
            MethodId::JavaGet,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Windows7,
        )
        .with_reps(15)
        .with_timing(TimingApiKind::JavaNanoTime),
    )
    .unwrap();
    assert!(median(&get.d2) > median(&get.d1), "Java GET Δd2 > Δd1");
    let post = ExperimentRunner::try_run(
        &ExperimentCell::paper(
            MethodId::JavaPost,
            RuntimeSel::Browser(BrowserKind::Chrome),
            OsKind::Windows7,
        )
        .with_reps(15)
        .with_timing(TimingApiKind::JavaNanoTime),
    )
    .unwrap();
    assert!(median(&post.d2) < median(&post.d1), "Java POST Δd2 < Δd1");
}

/// Figure 4(b): the two-level artifact appears under appletviewer too —
/// browsers and the Java Plug-in are exonerated.
#[test]
fn appletviewer_shows_quantization_without_browser() {
    // Scan a few seeds: the appletviewer session must be able to land in
    // a coarse regime and then show the discrete-level structure.
    let mut found = false;
    for seed in 0..6u64 {
        let cell = ExperimentCell::paper(
            MethodId::JavaTcp,
            RuntimeSel::AppletViewer,
            OsKind::Windows7,
        )
        .with_reps(20)
        .with_seed(seed);
        let r = ExperimentRunner::try_run(&cell).unwrap();
        let levels = Cdf::of(&r.d1).levels(3.0);
        if levels.len() >= 2 {
            found = true;
            // With no browser in the path, the fine level sits essentially
            // at zero overhead.
            assert!(levels[0].0 < 1.0);
            break;
        }
    }
    assert!(
        found,
        "appletviewer never sampled the coarse regime across seeds"
    );
}

/// The whole pipeline is deterministic under a fixed seed.
#[test]
fn full_pipeline_determinism() {
    let cell = ExperimentCell::paper(
        MethodId::FlashPost,
        RuntimeSel::Browser(BrowserKind::Opera),
        OsKind::Windows7,
    )
    .with_reps(8)
    .with_seed(123);
    let a = ExperimentRunner::try_run(&cell).unwrap();
    let b = ExperimentRunner::try_run(&cell).unwrap();
    assert_eq!(a.d1, b.d1);
    assert_eq!(a.d2, b.d2);
    assert_eq!(a.failures, 0);
}

/// Every runnable (method × browser × OS) cell completes without
/// failures — the full Figure 3 grid exercises all code paths.
#[test]
fn full_grid_smoke() {
    for method in MethodId::FIGURE3 {
        for (rt, os) in bnm::core::config::figure3_combos() {
            let cell = ExperimentCell::paper(method, rt, os).with_reps(2);
            if !cell.is_runnable() {
                continue;
            }
            let r = ExperimentRunner::try_run(&cell).unwrap();
            assert_eq!(r.failures, 0, "{}", cell.label());
            assert_eq!(r.d1.len(), 2);
            assert_eq!(r.d2.len(), 2);
        }
    }
}

/// Java methods run inside the JVM, so their Δd distribution is
/// browser-independent (with a sound clock) — verified with a two-sample
/// Kolmogorov–Smirnov test. Different *methods*, by contrast, produce
/// distinguishable distributions.
#[test]
fn distribution_level_checks_via_ks() {
    use bnm::stats::ks_two_sample;
    let java = |b: BrowserKind| {
        let cell =
            ExperimentCell::paper(MethodId::JavaTcp, RuntimeSel::Browser(b), OsKind::Windows7)
                .with_reps(25)
                .with_timing(TimingApiKind::JavaNanoTime);
        ExperimentRunner::try_run(&cell).unwrap().pooled()
    };
    let chrome = java(BrowserKind::Chrome);
    let firefox = java(BrowserKind::Firefox);
    let t = ks_two_sample(&chrome, &firefox);
    assert!(
        !t.rejects_same_distribution(0.01),
        "Java socket Δd should look the same in Chrome and Firefox (D={}, p={})",
        t.statistic,
        t.p_value
    );
    // WebSocket vs Flash GET: unmistakably different distributions.
    let ws = run(
        MethodId::WebSocket,
        BrowserKind::Chrome,
        OsKind::Ubuntu1204,
        25,
    )
    .pooled();
    let flash = run(
        MethodId::FlashGet,
        BrowserKind::Chrome,
        OsKind::Ubuntu1204,
        25,
    )
    .pooled();
    let t2 = ks_two_sample(&ws, &flash);
    assert!(t2.rejects_same_distribution(0.01), "D={}", t2.statistic);
}
