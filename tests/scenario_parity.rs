//! Tier-1 guarantees of the multi-client scenario layer:
//!
//! 1. **N = 1 parity** — a one-session [`Scenario`] built through the
//!    public API reproduces the legacy single-client runner path byte
//!    for byte: same captures, same measurements, same trace, same Δd
//!    attribution. The testbed of Figure 2 *is* the N = 1 scenario.
//! 2. **Insertion-order invariance** — per-session results are keyed by
//!    session id, never by the order the caller pushed the specs.
//! 3. **Scheduler parity** — multi-client cells are bit-identical
//!    between the serial and the work-stealing executor.

#![deny(deprecated)]

use bnm::browser::session_token;
use bnm::core::attribution;
use bnm::core::matching::ParsedCapture;
use bnm::core::testbed::TestbedConfig;
use bnm::prelude::*;
use bnm::sim::rng;
use bnm::sim::time::SimDuration;
use bnm::timeapi::MachineTimer;

fn cell(clients: u32, reps: u32, trace: bool) -> ExperimentCell {
    let b = ExperimentCell::builder(
        MethodId::XhrGet,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(reps)
    .seed(0xB32B_5CEA)
    .contention(ContentionSpec::clients(clients));
    if trace { b.trace(true) } else { b }.build().unwrap()
}

/// Replicate the runner's per-rep derivations and build the same session
/// as a hand-rolled one-element `Scenario`. Any drift between this and
/// `ExperimentRunner`'s own construction shows up as a parity failure
/// below.
fn scenario_for_rep(c: &ExperimentCell, rep: u32, trace: Trace) -> Scenario {
    let machine_seed = rng::derive_seed(c.seed, &format!("machine.{}", c.label()));
    let machine = MachineTimer::new(c.os, machine_seed)
        .at_offset(SimDuration::from_secs(4).saturating_mul(u64::from(rep)));
    let session_seed = rng::derive_seed(c.seed, &format!("session.{}", c.label()));
    let cfg = TestbedConfig {
        server_delay: c.server_delay,
        capture_noise_ns: c.capture_noise_ns,
        seed: rng::derive_seed(c.seed, "capture"),
        impairment: c.impairment,
        ..TestbedConfig::default()
    };
    let profile = bnm::browser::BrowserProfile::build(BrowserKind::Chrome, c.os).unwrap();
    Scenario::build_traced(
        &cfg,
        vec![SessionSpec {
            id: 0,
            plan: c.method.plan(c.timing_override),
            profile,
            machine,
            seed: session_seed ^ u64::from(rep),
        }],
        u64::from(rep),
        trace,
    )
}

/// (1) The one-session scenario reproduces the legacy runner rep —
/// captures, measurements, trace and attribution all byte-identical.
#[test]
fn one_session_scenario_matches_the_legacy_testbed_path() {
    let c = cell(1, 3, true);
    for rep in 0..c.reps {
        let legacy = ExperimentRunner::run_rep_traced(&c, rep).unwrap();

        let mut sc = scenario_for_rep(&c, rep, Trace::enabled());
        sc.run();
        assert!(sc.session(0).result().completed);

        // Session 0's marker token must be the legacy rep token exactly.
        let token = session_token(0, u64::from(rep));
        assert_eq!(token, u64::from(rep));

        let parsed = ParsedCapture::parse(sc.engine.tap(sc.client_taps[0]));
        let mut measurements = Vec::new();
        for r in sc.session(0).result().rounds.clone() {
            let wire = parsed.match_round(c.method, r.round, token).unwrap();
            measurements.push(RoundMeasurement {
                session: 0,
                round: r.round,
                browser: r,
                wire,
            });
        }
        assert_eq!(measurements, legacy.measurements, "rep {rep} measurements");

        let trace = sc.take_trace().unwrap();
        let legacy_trace = legacy.trace.unwrap();
        assert_eq!(trace, legacy_trace, "rep {rep} trace data");
        assert_eq!(trace.to_json(), legacy_trace.to_json());

        let attr = attribution::attribute(&trace, &measurements, rep).unwrap();
        assert_eq!(
            attribution::to_json(&attr),
            attribution::to_json(&legacy.attribution),
            "rep {rep} attribution"
        );
    }
}

/// (1b) The `clients` knob at rest is invisible: a cell that spells out
/// `clients(1)` is byte-identical to one that never mentions it.
#[test]
fn clients_one_is_byte_identical_to_the_plain_cell() {
    let plain = cell(1, 4, false);
    let spelled = plain.clone().with_contention(ContentionSpec::clients(1));
    let a = ExperimentRunner::try_run(&plain).unwrap();
    let b = ExperimentRunner::try_run(&spelled).unwrap();
    assert_eq!(a.d1, b.d1);
    assert_eq!(a.d2, b.d2);
    assert_eq!(a.measurements, b.measurements);
    assert_eq!(a.sessions.len(), 1);
    assert_eq!(a.sessions[0].d1, b.sessions[0].d1);
    assert_eq!(a.sessions[0].d2, b.sessions[0].d2);
}

/// (2) Per-session output is keyed by session id: pushing the specs in a
/// different order changes nothing — results, captures, server load.
#[test]
fn per_session_results_are_invariant_to_insertion_order() {
    let build = |ids: &[u64]| {
        let specs = ids
            .iter()
            .map(|&id| SessionSpec {
                id,
                plan: MethodId::XhrGet.plan(None),
                profile: bnm::browser::BrowserProfile::build(
                    BrowserKind::Chrome,
                    OsKind::Ubuntu1204,
                )
                .unwrap(),
                machine: MachineTimer::new(OsKind::Ubuntu1204, 11 + id),
                seed: 900 + id,
            })
            .collect();
        let mut sc = Scenario::build(&TestbedConfig::default(), specs, 5);
        sc.run();
        sc
    };
    let a = build(&[2, 0, 3, 1]);
    let b = build(&[0, 1, 2, 3]);
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        assert_eq!(a.session_id(i), b.session_id(i), "position {i}");
        assert_eq!(
            a.session(i).result().rounds,
            b.session(i).result().rounds,
            "position {i} rounds"
        );
        // The capture at each client NIC is byte-identical too: same
        // frames, same timestamps, same order.
        assert_eq!(
            format!("{:?}", a.engine.tap(a.client_taps[i]).records()),
            format!("{:?}", b.engine.tap(b.client_taps[i]).records()),
            "position {i} capture"
        );
    }
    assert_eq!(a.web_server().stats.pages, b.web_server().stats.pages);
}

/// (3) Multi-client cells keep the executor's bit-parity guarantee:
/// serial and work-stealing runs agree on every session's samples.
#[test]
fn contended_cells_are_bit_identical_across_schedulers() {
    let cells = vec![cell(3, 3, false)];
    let serial = Executor::serial().run(&cells);
    let parallel = Executor::with_workers(4).run(&cells);
    let (s, p) = (serial[0].as_ref().unwrap(), parallel[0].as_ref().unwrap());
    assert_eq!(s.measurements, p.measurements);
    assert_eq!(s.sessions.len(), 3);
    assert_eq!(s.sessions.len(), p.sessions.len());
    for (ss, ps) in s.sessions.iter().zip(&p.sessions) {
        assert_eq!(ss.session, ps.session);
        assert_eq!(ss.d1, ps.d1);
        assert_eq!(ss.d2, ps.d2);
        assert_eq!(ss.excluded_rounds, ps.excluded_rounds);
    }
}
