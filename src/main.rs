//! `bnm` — command-line front end to the appraisal library.
//!
//! ```text
//! bnm list                          the methods and their taxonomy
//! bnm appraise [options]           run one experiment cell and appraise it
//! bnm trace [options]              run traced and attribute Δd to components
//! bnm impair [options]             run a cell on an impaired network
//! bnm contend [options]            Δd vs concurrent clients on a shared link
//! bnm probe [--os windows|ubuntu]  the Figure 5 granularity probe
//! bnm ping                          ICMP baseline over the testbed
//! bnm tput [options]               throughput-estimate accuracy
//! bnm recommend [constraints]      §5 method recommendations
//! ```

#![deny(deprecated)]

use std::collections::HashMap;

use bnm::core::attribution;

use bnm::browser::BrowserKind;
use bnm::core::appraisal::Appraisal;
use bnm::core::baseline::ping_baseline;
use bnm::core::recommend::{self, Constraints};
use bnm::core::throughput::run_bulk_rep;
use bnm::core::{
    ContentionSpec, ExperimentCell, ExperimentRunner, FaultSpec, Impairment, RuntimeSel,
};
use bnm::methods::{table1_rows, MethodId};
use bnm::sim::time::{SimDuration, SimTime};
use bnm::stats::Summary;
use bnm::timeapi::{make_api, probe_granularity, MachineTimer, OsKind, TimingApiKind};

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(a.clone());
        }
    }
    (positional, flags)
}

fn method_by_label(label: &str) -> Option<MethodId> {
    MethodId::ALL.into_iter().find(|m| m.label() == label)
}

fn browser_by_name(name: &str) -> Option<BrowserKind> {
    BrowserKind::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
}

fn os_by_name(name: &str) -> Option<OsKind> {
    match name.to_ascii_lowercase().as_str() {
        "windows" | "win" | "w" => Some(OsKind::Windows7),
        "ubuntu" | "linux" | "u" => Some(OsKind::Ubuntu1204),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bnm <command> [options]\n\
         commands:\n  \
           list                                  show the Table 1 method taxonomy\n  \
           appraise [--method L] [--browser B] [--os O] [--reps N] [--seed S] [--nanotime]\n  \
           trace [--method L] [--browser B] [--os O] [--reps N] [--seed S]\n        \
                 [--format text|json|csv] [--events]   Δd attribution per round\n  \
           impair [--method L] [--browser B] [--os O] [--reps N] [--seed S]\n        \
                 [--loss P] [--corrupt P] [--duplicate P] [--jitter MS]\n        \
                 [--format text|json|csv]     Δd on an impaired network (P in [0,1])\n  \
           contend [--method L] [--browser B] [--os O] [--clients N] [--reps N]\n        \
                 [--seed S] [--rate-mbps R] [--format text|json|csv]\n        \
                 Δd vs concurrent clients sharing one server link (N in [1,4096])\n  \
           probe [--os O]                        timestamp-granularity probe (Figure 5)\n  \
           ping                                  ICMP baseline over the testbed\n  \
           tput [--method L] [--size BYTES]      throughput-estimate accuracy\n  \
           recommend [--mobile] [--no-plugins] [--no-ports] [--strict-origin]\n\
         \nmethod labels: {}",
        MethodId::ALL
            .iter()
            .map(|m| m.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let (_, flags) = parse_flags(&args[1..]);

    match cmd.as_str() {
        "list" => cmd_list(),
        "appraise" => cmd_appraise(&flags),
        "trace" => cmd_trace(&flags),
        "impair" => cmd_impair(&flags),
        "contend" => cmd_contend(&flags),
        "probe" => cmd_probe(&flags),
        "ping" => cmd_ping(),
        "tput" => cmd_tput(&flags),
        "recommend" => cmd_recommend(&flags),
        _ => usage(),
    }
}

fn cmd_list() {
    println!(
        "{:<12} {:<13} {:<12} {:<10} {:<11} metrics",
        "label", "approach", "technology", "method", "same-origin"
    );
    for row in table1_rows() {
        println!(
            "{:<12} {:<13} {:<12} {:<10} {:<11} {}",
            row.id.label(),
            row.approach,
            row.technology,
            row.method,
            row.same_origin,
            row.metrics
        );
    }
}

fn cmd_appraise(flags: &HashMap<String, String>) {
    let method = flags
        .get("method")
        .map(|m| method_by_label(m).unwrap_or_else(|| usage()))
        .unwrap_or(MethodId::WebSocket);
    let browser = flags
        .get("browser")
        .map(|b| browser_by_name(b).unwrap_or_else(|| usage()))
        .unwrap_or(BrowserKind::Chrome);
    let os = flags
        .get("os")
        .map(|o| os_by_name(o).unwrap_or_else(|| usage()))
        .unwrap_or(OsKind::Ubuntu1204);
    let reps: u32 = flags.get("reps").and_then(|r| r.parse().ok()).unwrap_or(25);
    let seed: u64 = flags
        .get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB32B_2013);

    let mut builder = ExperimentCell::builder(method, RuntimeSel::Browser(browser), os)
        .reps(reps)
        .seed(seed);
    if flags.contains_key("nanotime") {
        builder = builder.timing(TimingApiKind::JavaNanoTime);
    }
    let cell = match builder.build() {
        Ok(cell) => cell,
        Err(e @ bnm::RunError::Unrunnable { .. }) => {
            eprintln!("{e} (Table 2 feature matrix)");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "Appraising {} ({} reps, seed {seed:#x}) …",
        cell.label(),
        reps
    );
    let result = match ExperimentRunner::try_run(&cell) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    let a = match Appraisal::try_of(&result) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("appraisal failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "\nΔd1: median {:8.3} ms  IQR [{:8.3}, {:8.3}]  outliers {}",
        a.d1.median,
        a.d1.q1,
        a.d1.q3,
        a.d1.outliers.len()
    );
    println!(
        "Δd2: median {:8.3} ms  IQR [{:8.3}, {:8.3}]  outliers {}",
        a.d2.median,
        a.d2.q1,
        a.d2.q3,
        a.d2.outliers.len()
    );
    println!("pooled mean ± 95% CI: {} ms", a.mean_ci.format_table4());
    println!("verdict: {:?}", a.verdict);
    if result.failures > 0 {
        println!("({} repetitions failed)", result.failures);
    }
}

fn cmd_trace(flags: &HashMap<String, String>) {
    let method = flags
        .get("method")
        .map(|m| method_by_label(m).unwrap_or_else(|| usage()))
        .unwrap_or(MethodId::XhrGet);
    let browser = flags
        .get("browser")
        .map(|b| browser_by_name(b).unwrap_or_else(|| usage()))
        .unwrap_or(BrowserKind::Chrome);
    let os = flags
        .get("os")
        .map(|o| os_by_name(o).unwrap_or_else(|| usage()))
        .unwrap_or(OsKind::Ubuntu1204);
    let reps: u32 = flags.get("reps").and_then(|r| r.parse().ok()).unwrap_or(5);
    let seed: u64 = flags
        .get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB32B_2013);
    let format = flags.get("format").map(String::as_str).unwrap_or("text");
    if !matches!(format, "text" | "json" | "csv") {
        usage();
    }

    let cell = match ExperimentCell::builder(method, RuntimeSel::Browser(browser), os)
        .reps(reps)
        .seed(seed)
        .trace(true)
        .build()
    {
        Ok(cell) => cell,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let result = match ExperimentRunner::try_run(&cell) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };

    match format {
        "json" => println!("{}", attribution::to_json(&result.attributions)),
        "csv" => print!("{}", attribution::to_csv(&result.attributions)),
        _ => {
            println!(
                "Δd attribution for {} ({} reps, seed {seed:#x}), ms:\n",
                cell.label(),
                reps
            );
            print!("{}", attribution::render_table(&result.attributions));
            if result.failures > 0 {
                println!("({} repetitions failed)", result.failures);
            }
        }
    }

    // Raw event dump for the first repetition, in the same format.
    if flags.contains_key("events") {
        if let Some(t) = result.traces.first() {
            match format {
                "json" => println!("{}", t.to_json()),
                _ => print!("{}", t.to_csv()),
            }
        }
    }
}

fn cmd_impair(flags: &HashMap<String, String>) {
    let method = flags
        .get("method")
        .map(|m| method_by_label(m).unwrap_or_else(|| usage()))
        .unwrap_or(MethodId::WebSocket);
    let browser = flags
        .get("browser")
        .map(|b| browser_by_name(b).unwrap_or_else(|| usage()))
        .unwrap_or(BrowserKind::Chrome);
    let os = flags
        .get("os")
        .map(|o| os_by_name(o).unwrap_or_else(|| usage()))
        .unwrap_or(OsKind::Ubuntu1204);
    let reps: u32 = flags.get("reps").and_then(|r| r.parse().ok()).unwrap_or(25);
    let seed: u64 = flags
        .get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB32B_2013);
    let format = flags.get("format").map(String::as_str).unwrap_or("text");
    if !matches!(format, "text" | "json" | "csv") {
        usage();
    }
    let prob = |name: &str| -> f64 {
        let p = flags.get(name).and_then(|v| v.parse().ok()).unwrap_or(0.0);
        if !(0.0..=1.0).contains(&p) {
            usage();
        }
        p
    };
    let spec = FaultSpec {
        drop_chance: prob("loss"),
        corrupt_chance: prob("corrupt"),
        duplicate_chance: prob("duplicate"),
        ..FaultSpec::CLEAN
    };
    let jitter_ms: f64 = flags
        .get("jitter")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let imp = Impairment {
        up: spec,
        down: spec,
        jitter: SimDuration::from_millis_f64(jitter_ms),
    };

    let cell = match ExperimentCell::builder(method, RuntimeSel::Browser(browser), os)
        .reps(reps)
        .seed(seed)
        .impairment(imp)
        .build()
    {
        Ok(cell) => cell,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let result = match ExperimentRunner::try_run(&cell) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    let med = |v: &[f64]| {
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if s.is_empty() {
            f64::NAN
        } else {
            s[s.len() / 2]
        }
    };
    match format {
        "json" => println!(
            "{{\"cell\":{:?},\"loss\":{},\"corrupt\":{},\"duplicate\":{},\"jitter_ms\":{},\
             \"d1_median_ms\":{},\"d2_median_ms\":{},\"d1_n\":{},\"d2_n\":{},\
             \"excluded_rounds\":{},\"failures\":{}}}",
            cell.label(),
            spec.drop_chance,
            spec.corrupt_chance,
            spec.duplicate_chance,
            jitter_ms,
            med(&result.d1),
            med(&result.d2),
            result.d1.len(),
            result.d2.len(),
            result.excluded_rounds,
            result.failures
        ),
        "csv" => {
            println!(
                "cell,loss,corrupt,duplicate,jitter_ms,d1_median_ms,d2_median_ms,d1_n,d2_n,\
                 excluded_rounds,failures"
            );
            println!(
                "{},{},{},{},{},{},{},{},{},{},{}",
                cell.label(),
                spec.drop_chance,
                spec.corrupt_chance,
                spec.duplicate_chance,
                jitter_ms,
                med(&result.d1),
                med(&result.d2),
                result.d1.len(),
                result.d2.len(),
                result.excluded_rounds,
                result.failures
            );
        }
        _ => {
            println!(
                "{} on an impaired network ({} reps, seed {seed:#x}):",
                cell.label(),
                reps
            );
            println!(
                "  loss {:.1}%  corrupt {:.1}%  duplicate {:.1}%  jitter ≤ {jitter_ms} ms",
                spec.drop_chance * 100.0,
                spec.corrupt_chance * 100.0,
                spec.duplicate_chance * 100.0
            );
            println!(
                "  Δd1 median {:8.3} ms over {} rounds",
                med(&result.d1),
                result.d1.len()
            );
            println!(
                "  Δd2 median {:8.3} ms over {} rounds",
                med(&result.d2),
                result.d2.len()
            );
            println!(
                "  excluded {} retransmitted round(s), {} failed repetition(s)",
                result.excluded_rounds, result.failures
            );
        }
    }
}

fn cmd_contend(flags: &HashMap<String, String>) {
    let method = flags
        .get("method")
        .map(|m| method_by_label(m).unwrap_or_else(|| usage()))
        .unwrap_or(MethodId::FlashGet);
    let browser = flags
        .get("browser")
        .map(|b| browser_by_name(b).unwrap_or_else(|| usage()))
        .unwrap_or(BrowserKind::Opera);
    let os = flags
        .get("os")
        .map(|o| os_by_name(o).unwrap_or_else(|| usage()))
        .unwrap_or(OsKind::Windows7);
    let max_clients: u32 = flags
        .get("clients")
        .and_then(|c| c.parse().ok())
        .unwrap_or(64);
    if !(1..=4096).contains(&max_clients) {
        usage();
    }
    let reps: u32 = flags.get("reps").and_then(|r| r.parse().ok()).unwrap_or(10);
    let seed: u64 = flags
        .get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB32B_2013);
    let rate_mbps: f64 = flags
        .get("rate-mbps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.4);
    if rate_mbps <= 0.0 || !rate_mbps.is_finite() {
        usage();
    }
    let rate_bps = (rate_mbps * 1e6) as u64;
    let format = flags.get("format").map(String::as_str).unwrap_or("text");
    if !matches!(format, "text" | "json" | "csv") {
        usage();
    }

    // Sweep the powers of two up to the requested cap (the cap itself is
    // always included so `--clients 48` still ends at 48).
    let mut counts: Vec<u32> = std::iter::successors(Some(1u32), |c| Some(c * 2))
        .take_while(|c| *c < max_clients)
        .collect();
    counts.push(max_clients);

    let med = |v: &[f64]| {
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if s.is_empty() {
            f64::NAN
        } else {
            s[s.len() / 2]
        }
    };

    if format == "text" {
        println!(
            "{} vs concurrent clients on a {rate_mbps} Mbps server link \
             ({reps} reps, seed {seed:#x}):",
            method.display_name()
        );
        println!(
            "  {:>8} {:>12} {:>12} {:>7} {:>9} {:>9}",
            "clients", "Δd1 med ms", "Δd2 med ms", "n", "excluded", "failures"
        );
    } else if format == "csv" {
        println!(
            "cell,clients,rate_mbps,d1_median_ms,d2_median_ms,d1_n,d2_n,\
             excluded_rounds,failures"
        );
    }
    let mut json_rows = Vec::new();
    let mut cell_label = String::new();
    for c in counts {
        let cell = match ExperimentCell::builder(method, RuntimeSel::Browser(browser), os)
            .reps(reps)
            .seed(seed)
            .contention(ContentionSpec::clients(c).with_server_link_rate(rate_bps))
            .build()
        {
            Ok(cell) => cell,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        cell_label = cell.label();
        let result = match ExperimentRunner::try_run(&cell) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("run failed at {c} client(s): {e}");
                std::process::exit(1);
            }
        };
        // Every session is a measuring client, so pool them all.
        let d1: Vec<f64> = result
            .sessions
            .iter()
            .flat_map(|s| s.d1.iter().copied())
            .collect();
        let d2: Vec<f64> = result
            .sessions
            .iter()
            .flat_map(|s| s.d2.iter().copied())
            .collect();
        match format {
            "json" => json_rows.push(format!(
                "{{\"clients\":{c},\"d1_median_ms\":{},\"d2_median_ms\":{},\
                 \"d1_n\":{},\"d2_n\":{},\"excluded_rounds\":{},\"failures\":{}}}",
                med(&d1),
                med(&d2),
                d1.len(),
                d2.len(),
                result.excluded_rounds,
                result.failures
            )),
            "csv" => println!(
                "{},{c},{rate_mbps},{},{},{},{},{},{}",
                cell.label(),
                med(&d1),
                med(&d2),
                d1.len(),
                d2.len(),
                result.excluded_rounds,
                result.failures
            ),
            _ => println!(
                "  {c:>8} {:>12.3} {:>12.3} {:>7} {:>9} {:>9}",
                med(&d1),
                med(&d2),
                d1.len() + d2.len(),
                result.excluded_rounds,
                result.failures
            ),
        }
    }
    if format == "json" {
        println!(
            "{{\"cell\":{cell_label:?},\"rate_mbps\":{rate_mbps},\"sweep\":[{}]}}",
            json_rows.join(",")
        );
    } else if format == "text" {
        println!(
            "\nFresh-connection methods (Flash GET round 1, Flash POST every round)\n\
             queue their in-round handshake behind the crowd's traffic — that wait\n\
             lands before tN_s and inflates Δd. Connection-reusing methods shed the\n\
             crowd's queueing because it falls between tN_s and tN_r (Eq. 1)."
        );
    }
}

fn cmd_probe(flags: &HashMap<String, String>) {
    let os = flags
        .get("os")
        .map(|o| os_by_name(o).unwrap_or_else(|| usage()))
        .unwrap_or(OsKind::Windows7);
    let machine = MachineTimer::new(os, 2013);
    println!("Granularity probe on {} (Figure 5):", os.name());
    for kind in [TimingApiKind::JavaDateGetTime, TimingApiKind::JavaNanoTime] {
        let mut api = make_api(kind, &machine);
        // Probe at several points of the regime timeline.
        let mut seen = Vec::new();
        for minute in [0u64, 5, 17, 43, 91] {
            if let Some(p) =
                probe_granularity(api.as_mut(), SimTime::from_secs(minute * 60), 10_000_000)
            {
                if !seen.iter().any(|s: &f64| (s - p.observed_ms).abs() < 1e-9) {
                    seen.push(p.observed_ms);
                }
            }
        }
        println!(
            "  {:<26} observed tick(s): {}",
            kind.to_string(),
            seen.iter()
                .map(|g| format!("{g:.6} ms"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}

fn cmd_ping() {
    let rtts = ping_baseline(10, SimDuration::from_millis(50), 1);
    let s = Summary::of(&rtts);
    for (i, r) in rtts.iter().enumerate() {
        println!("64 bytes from 192.168.1.10: icmp_seq={i} time={r:.3} ms");
    }
    println!(
        "\n--- 192.168.1.10 ping statistics ---\n{} packets, min/med/max = {:.3}/{:.3}/{:.3} ms",
        rtts.len(),
        s.min,
        s.median,
        s.max
    );
}

fn cmd_tput(flags: &HashMap<String, String>) {
    let method = flags
        .get("method")
        .map(|m| method_by_label(m).unwrap_or_else(|| usage()))
        .unwrap_or(MethodId::XhrGet);
    let size: usize = flags
        .get("size")
        .and_then(|s| s.parse().ok())
        .unwrap_or(128 * 1024);
    let cell = ExperimentCell::paper(
        method,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    );
    println!("Throughput check: {} downloading {} bytes …", method, size);
    match run_bulk_rep(&cell, 0, size) {
        Ok(ms) => {
            for m in ms {
                println!(
                    "round {}: wire {:7.2} Mbit/s  measured {:7.2} Mbit/s  under-estimated {:5.1}%",
                    m.round,
                    m.wire_bps() / 1e6,
                    m.browser_bps() / 1e6,
                    m.underestimation() * 100.0
                );
            }
        }
        Err(e) => {
            eprintln!("measurement failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_recommend(flags: &HashMap<String, String>) {
    let c = Constraints {
        mobile: flags.contains_key("mobile"),
        plugins_allowed: !flags.contains_key("no-plugins"),
        can_open_ports: !flags.contains_key("no-ports"),
        strict_cross_origin: flags.contains_key("strict-origin"),
    };
    println!("Constraints: {c:?}\n");
    for (i, rec) in recommend::recommend_methods(&c).iter().enumerate() {
        println!(
            "{}. {:<24} timing {}\n   {}",
            i + 1,
            rec.method.display_name(),
            rec.timing,
            rec.rationale
        );
    }
    println!("\nDiscouraged:");
    for (m, why) in recommend::discouraged() {
        println!("  ✗ {:<14} — {}", m.display_name(), why);
    }
}
