//! `bnm` — command-line front end to the appraisal library.
//!
//! ```text
//! bnm list                          the methods and their taxonomy
//! bnm appraise [options]           run one experiment cell and appraise it
//! bnm trace [options]              run traced and attribute Δd to components
//! bnm impair [options]             run a cell on an impaired network
//! bnm contend [options]            Δd vs concurrent clients on a shared link
//! bnm serve [options]              continuous monitoring with periodic snapshots
//! bnm probe [--os windows|ubuntu]  the Figure 5 granularity probe
//! bnm ping                          ICMP baseline over the testbed
//! bnm tput [options]               throughput-estimate accuracy
//! bnm recommend [constraints]      §5 method recommendations
//! bnm battery [options]            the full scored appraisal battery
//! ```
//!
//! Every data-producing subcommand shares one `--format {text,json,csv}`
//! code path: it builds a [`Render`]able (`Table`, `ReportSnapshot` or
//! `TraceReport`) and emits it — no per-command formatters.

#![deny(deprecated)]

use std::collections::HashMap;

use bnm::browser::BrowserKind;
use bnm::core::appraisal::Appraisal;
use bnm::core::baseline::ping_baseline;
use bnm::core::recommend::{self, Constraints};
use bnm::core::report::{Table, TraceReport, Value};
use bnm::core::throughput::run_bulk_rep;
use bnm::core::{
    ContentionSpec, DistSummary, ExperimentCell, ExperimentRunner, FaultSpec, Impairment, Monitor,
    MonitorConfig, Render, ReportFormat, RuntimeSel, StreamingSpec,
};
use bnm::methods::{table1_rows, MethodId};
use bnm::sim::time::{SimDuration, SimTime};
use bnm::stats::Summary;
use bnm::timeapi::{make_api, probe_granularity, MachineTimer, OsKind, TimingApiKind};

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(a.clone());
        }
    }
    (positional, flags)
}

fn method_by_label(label: &str) -> Option<MethodId> {
    // EXTENDED = the Table 1 eleven plus post-paper additions (webrtc).
    MethodId::EXTENDED.into_iter().find(|m| m.label() == label)
}

fn browser_by_name(name: &str) -> Option<BrowserKind> {
    BrowserKind::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
}

fn os_by_name(name: &str) -> Option<OsKind> {
    match name.to_ascii_lowercase().as_str() {
        "windows" | "win" | "w" => Some(OsKind::Windows7),
        "ubuntu" | "linux" | "u" => Some(OsKind::Ubuntu1204),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bnm <command> [options]\n\
         commands:\n  \
           list                                  show the Table 1 method taxonomy\n  \
           appraise [--method L] [--browser B] [--os O] [--reps N] [--seed S] [--nanotime]\n  \
           trace [--method L] [--browser B] [--os O] [--reps N] [--seed S]\n        \
                 [--format text|json|csv] [--events]   Δd attribution per round\n  \
           impair [--method L] [--browser B] [--os O] [--reps N] [--seed S]\n        \
                 [--loss P] [--corrupt P] [--duplicate P] [--jitter MS]\n        \
                 [--format text|json|csv]     Δd on an impaired network (P in [0,1])\n  \
           contend [--method L] [--browser B] [--os O] [--clients N] [--reps N]\n        \
                 [--seed S] [--rate-mbps R] [--format text|json|csv]\n        \
                 Δd vs concurrent clients sharing one server link (N in [1,4096])\n  \
           serve [--method L] [--browser B] [--os O] [--clients N] [--rate-mbps R]\n        \
                 [--loss P] [--seed S] [--duration SECS] [--every SECS] [--period MS]\n        \
                 [--format text|json|csv]     continuous monitoring: windowed snapshots\n  \
           webrtc [--browser B] [--os O] [--reps N] [--seed S] [--loss P] [--jitter MS]\n        \
                 [--format text|json|csv]     WebRTC data channel: per-probe OWD,\n        \
                 RFC 3550 jitter, loss and reordering from both taps\n  \
           probe [--os O]                        timestamp-granularity probe (Figure 5)\n  \
           ping                                  ICMP baseline over the testbed\n  \
           tput [--method L] [--size BYTES] [--format text|json|csv]\n        \
                 throughput-estimate accuracy\n  \
           recommend [--mobile] [--no-plugins] [--no-ports] [--strict-origin]\n        \
                 [--format text|json|csv]     §5 method recommendations\n  \
           battery [--quick] [--reps N] [--seed S] [--serial]\n        \
                 [--format text|json|csv]     run every method across the clean,\n        \
                 impaired, contended, bufferbloat (drop-tail vs CoDel) and\n        \
                 time-varying scenarios; rank by measured deployment score\n\
         \nmethod labels: {}",
        MethodId::EXTENDED
            .iter()
            .map(|m| m.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

/// The one `--format` flag shared by every data-producing subcommand.
fn parse_format(flags: &HashMap<String, String>) -> ReportFormat {
    match flags.get("format") {
        None => ReportFormat::Text,
        Some(f) => f.parse().unwrap_or_else(|_| usage()),
    }
}

/// Emit a renderable in the chosen format — text gets a trailing-newline
/// print, csv/json come out exactly as rendered.
fn emit(r: &impl Render, fmt: ReportFormat) {
    let out = r.render(fmt);
    if out.ends_with('\n') {
        print!("{out}");
    } else {
        println!("{out}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let (_, flags) = parse_flags(&args[1..]);

    match cmd.as_str() {
        "list" => cmd_list(),
        "appraise" => cmd_appraise(&flags),
        "trace" => cmd_trace(&flags),
        "impair" => cmd_impair(&flags),
        "contend" => cmd_contend(&flags),
        "serve" => cmd_serve(&flags),
        "webrtc" => cmd_webrtc(&flags),
        "probe" => cmd_probe(&flags),
        "ping" => cmd_ping(),
        "tput" => cmd_tput(&flags),
        "recommend" => cmd_recommend(&flags),
        "battery" => cmd_battery(&flags),
        _ => usage(),
    }
}

fn cmd_list() {
    println!(
        "{:<12} {:<13} {:<12} {:<10} {:<11} metrics",
        "label", "approach", "technology", "method", "same-origin"
    );
    for row in table1_rows() {
        println!(
            "{:<12} {:<13} {:<12} {:<10} {:<11} {}",
            row.id.label(),
            row.approach,
            row.technology,
            row.method,
            row.same_origin,
            row.metrics
        );
    }
    // Post-paper extensions live outside Table 1.
    for m in MethodId::EXTENDED {
        if MethodId::ALL.contains(&m) {
            continue;
        }
        println!(
            "{:<12} {:<13} {:<12} {:<10} {:<11} {}  (extension)",
            m.label(),
            if m.is_http_based() {
                "HTTP-based"
            } else {
                "Socket-based"
            },
            m.display_name(),
            m.transport().name(),
            m.same_origin().cell(),
            m.metrics()
        );
    }
}

fn cmd_appraise(flags: &HashMap<String, String>) {
    let method = flags
        .get("method")
        .map(|m| method_by_label(m).unwrap_or_else(|| usage()))
        .unwrap_or(MethodId::WebSocket);
    let browser = flags
        .get("browser")
        .map(|b| browser_by_name(b).unwrap_or_else(|| usage()))
        .unwrap_or(BrowserKind::Chrome);
    let os = flags
        .get("os")
        .map(|o| os_by_name(o).unwrap_or_else(|| usage()))
        .unwrap_or(OsKind::Ubuntu1204);
    let reps: u32 = flags.get("reps").and_then(|r| r.parse().ok()).unwrap_or(25);
    let seed: u64 = flags
        .get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB32B_2013);

    let mut builder = ExperimentCell::builder(method, RuntimeSel::Browser(browser), os)
        .reps(reps)
        .seed(seed);
    if flags.contains_key("nanotime") {
        builder = builder.timing(TimingApiKind::JavaNanoTime);
    }
    let cell = match builder.build() {
        Ok(cell) => cell,
        Err(e @ bnm::RunError::Unrunnable { .. }) => {
            eprintln!("{e} (Table 2 feature matrix)");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "Appraising {} ({} reps, seed {seed:#x}) …",
        cell.label(),
        reps
    );
    let result = match ExperimentRunner::try_run(&cell) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    let a = match Appraisal::try_of(&result) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("appraisal failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "\nΔd1: median {:8.3} ms  IQR [{:8.3}, {:8.3}]  outliers {}",
        a.d1.median,
        a.d1.q1,
        a.d1.q3,
        a.d1.outliers.len()
    );
    println!(
        "Δd2: median {:8.3} ms  IQR [{:8.3}, {:8.3}]  outliers {}",
        a.d2.median,
        a.d2.q1,
        a.d2.q3,
        a.d2.outliers.len()
    );
    println!("pooled mean ± 95% CI: {} ms", a.mean_ci.format_table4());
    println!("verdict: {:?}", a.verdict);
    if result.failures > 0 {
        println!("({} repetitions failed)", result.failures);
    }
}

fn cmd_trace(flags: &HashMap<String, String>) {
    let method = flags
        .get("method")
        .map(|m| method_by_label(m).unwrap_or_else(|| usage()))
        .unwrap_or(MethodId::XhrGet);
    let browser = flags
        .get("browser")
        .map(|b| browser_by_name(b).unwrap_or_else(|| usage()))
        .unwrap_or(BrowserKind::Chrome);
    let os = flags
        .get("os")
        .map(|o| os_by_name(o).unwrap_or_else(|| usage()))
        .unwrap_or(OsKind::Ubuntu1204);
    let reps: u32 = flags.get("reps").and_then(|r| r.parse().ok()).unwrap_or(5);
    let seed: u64 = flags
        .get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB32B_2013);
    let format = parse_format(flags);

    let cell = match ExperimentCell::builder(method, RuntimeSel::Browser(browser), os)
        .reps(reps)
        .seed(seed)
        .trace(true)
        .build()
    {
        Ok(cell) => cell,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let result = match ExperimentRunner::try_run(&cell) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };

    if format == ReportFormat::Text {
        println!(
            "Δd attribution for {} ({} reps, seed {seed:#x}), ms:\n",
            cell.label(),
            reps
        );
    }
    emit(&TraceReport::new(&result.attributions), format);
    if format == ReportFormat::Text && result.failures > 0 {
        println!("({} repetitions failed)", result.failures);
    }

    // Raw event dump for the first repetition, in the same format.
    if flags.contains_key("events") {
        if let Some(t) = result.traces.first() {
            match format {
                ReportFormat::Json => println!("{}", t.to_json()),
                _ => print!("{}", t.to_csv()),
            }
        }
    }
}

fn cmd_impair(flags: &HashMap<String, String>) {
    let method = flags
        .get("method")
        .map(|m| method_by_label(m).unwrap_or_else(|| usage()))
        .unwrap_or(MethodId::WebSocket);
    let browser = flags
        .get("browser")
        .map(|b| browser_by_name(b).unwrap_or_else(|| usage()))
        .unwrap_or(BrowserKind::Chrome);
    let os = flags
        .get("os")
        .map(|o| os_by_name(o).unwrap_or_else(|| usage()))
        .unwrap_or(OsKind::Ubuntu1204);
    let reps: u32 = flags.get("reps").and_then(|r| r.parse().ok()).unwrap_or(25);
    let seed: u64 = flags
        .get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB32B_2013);
    let format = parse_format(flags);
    let prob = |name: &str| -> f64 {
        let p = flags.get(name).and_then(|v| v.parse().ok()).unwrap_or(0.0);
        if !(0.0..=1.0).contains(&p) {
            usage();
        }
        p
    };
    let spec = FaultSpec {
        drop_chance: prob("loss"),
        corrupt_chance: prob("corrupt"),
        duplicate_chance: prob("duplicate"),
        ..FaultSpec::CLEAN
    };
    let jitter_ms: f64 = flags
        .get("jitter")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let imp = Impairment {
        up: spec,
        down: spec,
        jitter: SimDuration::from_millis_f64(jitter_ms),
    };

    let cell = match ExperimentCell::builder(method, RuntimeSel::Browser(browser), os)
        .reps(reps)
        .seed(seed)
        .impairment(imp)
        .build()
    {
        Ok(cell) => cell,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let result = match ExperimentRunner::try_run(&cell) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    let med = |v: &[f64]| DistSummary::of_samples(v).p50;
    let mut table = Table::new(
        format!(
            "{} on an impaired network ({} reps, seed {seed:#x})",
            cell.label(),
            reps
        ),
        &[
            "cell",
            "loss",
            "corrupt",
            "duplicate",
            "jitter_ms",
            "d1_median_ms",
            "d2_median_ms",
            "d1_n",
            "d2_n",
            "excluded_rounds",
            "failures",
            "dgram_delivered",
            "dgram_lost",
            "dgram_reordered",
        ],
    );
    let (dg_delivered, dg_lost, dg_reordered) = datagram_cells(&result);
    table.row(vec![
        Value::Text(cell.label()),
        Value::Num(spec.drop_chance),
        Value::Num(spec.corrupt_chance),
        Value::Num(spec.duplicate_chance),
        Value::Num(jitter_ms),
        Value::Num(med(&result.d1)),
        Value::Num(med(&result.d2)),
        Value::Int(result.d1.len() as i64),
        Value::Int(result.d2.len() as i64),
        Value::Int(result.excluded_rounds as i64),
        Value::Int(result.failures as i64),
        dg_delivered,
        dg_lost,
        dg_reordered,
    ]);
    table.note(
        "Rounds hit by retransmission are excluded per §3.2; medians are R-7 \
         over the surviving rounds. The dgram_* columns are populated only for \
         datagram methods (webrtc), whose losses are measured, not excluded.",
    );
    emit(&table, format);
}

/// The three `dgram_*` sweep cells: per-probe counters summed over every
/// session for datagram methods, empty fields otherwise.
fn datagram_cells(result: &bnm::core::runner::CellResult) -> (Value, Value, Value) {
    let stats: Vec<_> = result
        .sessions
        .iter()
        .filter_map(|s| s.datagram.as_ref())
        .collect();
    if stats.is_empty() {
        return (
            Value::Text(String::new()),
            Value::Text(String::new()),
            Value::Text(String::new()),
        );
    }
    let delivered: u64 = stats.iter().map(|d| d.delivered).sum();
    let lost: u64 = stats
        .iter()
        .map(|d| d.lost_upstream + d.lost_downstream)
        .sum();
    let reordered: u64 = stats.iter().map(|d| d.reordered).sum();
    (
        Value::Int(delivered as i64),
        Value::Int(lost as i64),
        Value::Int(reordered as i64),
    )
}

fn cmd_contend(flags: &HashMap<String, String>) {
    let method = flags
        .get("method")
        .map(|m| method_by_label(m).unwrap_or_else(|| usage()))
        .unwrap_or(MethodId::FlashGet);
    let browser = flags
        .get("browser")
        .map(|b| browser_by_name(b).unwrap_or_else(|| usage()))
        .unwrap_or(BrowserKind::Opera);
    let os = flags
        .get("os")
        .map(|o| os_by_name(o).unwrap_or_else(|| usage()))
        .unwrap_or(OsKind::Windows7);
    let max_clients: u32 = flags
        .get("clients")
        .and_then(|c| c.parse().ok())
        .unwrap_or(64);
    if !(1..=4096).contains(&max_clients) {
        usage();
    }
    let reps: u32 = flags.get("reps").and_then(|r| r.parse().ok()).unwrap_or(10);
    let seed: u64 = flags
        .get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB32B_2013);
    let rate_mbps: f64 = flags
        .get("rate-mbps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.4);
    if rate_mbps <= 0.0 || !rate_mbps.is_finite() {
        usage();
    }
    let rate_bps = (rate_mbps * 1e6) as u64;
    let format = parse_format(flags);

    // Sweep the powers of two up to the requested cap (the cap itself is
    // always included so `--clients 48` still ends at 48).
    let mut counts: Vec<u32> = std::iter::successors(Some(1u32), |c| Some(c * 2))
        .take_while(|c| *c < max_clients)
        .collect();
    counts.push(max_clients);

    let med = |v: &[f64]| DistSummary::of_samples(v).p50;
    let mut table = Table::new(
        format!(
            "{} vs concurrent clients on a {rate_mbps} Mbps server link \
             ({reps} reps, seed {seed:#x})",
            method.display_name()
        ),
        &[
            "cell",
            "clients",
            "rate_mbps",
            "d1_median_ms",
            "d2_median_ms",
            "d1_n",
            "d2_n",
            "excluded_rounds",
            "failures",
            "dgram_delivered",
            "dgram_lost",
            "dgram_reordered",
        ],
    );
    for c in counts {
        let cell = match ExperimentCell::builder(method, RuntimeSel::Browser(browser), os)
            .reps(reps)
            .seed(seed)
            .contention(ContentionSpec::clients(c).with_server_link_rate(rate_bps))
            .build()
        {
            Ok(cell) => cell,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        let result = match ExperimentRunner::try_run(&cell) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("run failed at {c} client(s): {e}");
                std::process::exit(1);
            }
        };
        // Every session is a measuring client, so pool them all.
        let d1: Vec<f64> = result
            .sessions
            .iter()
            .flat_map(|s| s.d1.iter().copied())
            .collect();
        let d2: Vec<f64> = result
            .sessions
            .iter()
            .flat_map(|s| s.d2.iter().copied())
            .collect();
        let (dg_delivered, dg_lost, dg_reordered) = datagram_cells(&result);
        table.row(vec![
            Value::Text(cell.label()),
            Value::Int(c as i64),
            Value::Num(rate_mbps),
            Value::Num(med(&d1)),
            Value::Num(med(&d2)),
            Value::Int(d1.len() as i64),
            Value::Int(d2.len() as i64),
            Value::Int(result.excluded_rounds as i64),
            Value::Int(result.failures as i64),
            dg_delivered,
            dg_lost,
            dg_reordered,
        ]);
    }
    table.note(
        "Fresh-connection methods (Flash GET round 1, Flash POST every round) \
         queue their in-round handshake behind the crowd's traffic — that wait \
         lands before tN_s and inflates Δd. Connection-reusing methods shed the \
         crowd's queueing because it falls between tN_s and tN_r (Eq. 1).",
    );
    emit(&table, format);
}

/// `bnm webrtc` — run the WebRTC data-channel cell and emit its
/// per-probe appraisal: OWD both ways, RFC 3550 jitter (wire vs
/// browser), loss and reordering, plus the usual Δd digests.
fn cmd_webrtc(flags: &HashMap<String, String>) {
    let browser = flags
        .get("browser")
        .map(|b| browser_by_name(b).unwrap_or_else(|| usage()))
        .unwrap_or(BrowserKind::Chrome);
    let os = flags
        .get("os")
        .map(|o| os_by_name(o).unwrap_or_else(|| usage()))
        .unwrap_or(OsKind::Ubuntu1204);
    let reps: u32 = flags.get("reps").and_then(|r| r.parse().ok()).unwrap_or(25);
    let seed: u64 = flags
        .get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB32B_2013);
    let loss: f64 = flags
        .get("loss")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    if !(0.0..=1.0).contains(&loss) {
        usage();
    }
    let jitter_ms: f64 = flags
        .get("jitter")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let format = parse_format(flags);

    let mut builder = ExperimentCell::builder(MethodId::WebRtc, RuntimeSel::Browser(browser), os)
        .reps(reps)
        .seed(seed);
    if loss > 0.0 || jitter_ms > 0.0 {
        let spec = FaultSpec {
            drop_chance: loss,
            ..FaultSpec::CLEAN
        };
        builder = builder.impairment(Impairment {
            up: spec,
            down: spec,
            jitter: SimDuration::from_millis_f64(jitter_ms),
        });
    }
    let cell = match builder.build() {
        Ok(cell) => cell,
        Err(e @ bnm::RunError::Unrunnable { .. }) => {
            eprintln!("{e} (WebRTC needs a WebSocket-era engine, Table 2)");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let result = match ExperimentRunner::try_run(&cell) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    emit(&result.summary(&cell), format);
}

fn cmd_serve(flags: &HashMap<String, String>) {
    let method = flags
        .get("method")
        .map(|m| method_by_label(m).unwrap_or_else(|| usage()))
        .unwrap_or(MethodId::XhrGet);
    if method.is_datagram() {
        eprintln!(
            "serve drives streaming marker sinks, which cannot recover \
             per-probe one-way delays; use `bnm webrtc` for datagram methods"
        );
        std::process::exit(2);
    }
    let browser = flags
        .get("browser")
        .map(|b| browser_by_name(b).unwrap_or_else(|| usage()))
        .unwrap_or(BrowserKind::Chrome);
    let os = flags
        .get("os")
        .map(|o| os_by_name(o).unwrap_or_else(|| usage()))
        .unwrap_or(OsKind::Ubuntu1204);
    let clients: u32 = flags
        .get("clients")
        .and_then(|c| c.parse().ok())
        .unwrap_or(1);
    if !(1..=4096).contains(&clients) {
        usage();
    }
    let rate_mbps: Option<f64> = flags.get("rate-mbps").and_then(|v| v.parse().ok());
    if rate_mbps.is_some_and(|r| r <= 0.0 || !r.is_finite()) {
        usage();
    }
    let loss: f64 = flags
        .get("loss")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    if !(0.0..=1.0).contains(&loss) {
        usage();
    }
    let seed: u64 = flags
        .get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB32B_2013);
    let duration_secs: f64 = flags
        .get("duration")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let every_secs: f64 = flags
        .get("every")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let period_ms: f64 = flags
        .get("period")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000.0);
    if duration_secs <= 0.0 || every_secs <= 0.0 || period_ms <= 0.0 {
        usage();
    }
    let format = parse_format(flags);

    // The monitor owns the round loop, so the cell's rep count is only a
    // label-level detail; streaming capture with bounded retention keeps
    // per-round memory flat no matter how long the run goes.
    let mut builder = ExperimentCell::builder(method, RuntimeSel::Browser(browser), os)
        .reps(1)
        .seed(seed)
        .streaming(StreamingSpec::serve());
    if clients > 1 || rate_mbps.is_some() {
        let mut spec = ContentionSpec::clients(clients);
        if let Some(r) = rate_mbps {
            spec = spec.with_server_link_rate((r * 1e6) as u64);
        }
        builder = builder.contention(spec);
    }
    if loss > 0.0 {
        let spec = FaultSpec {
            drop_chance: loss,
            ..FaultSpec::CLEAN
        };
        builder = builder.impairment(Impairment {
            up: spec,
            down: spec,
            jitter: SimDuration::ZERO,
        });
    }
    let cell = match builder.build() {
        Ok(cell) => cell,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    let cfg = MonitorConfig {
        round_period: SimDuration::from_millis_f64(period_ms),
        ..MonitorConfig::default()
    };
    let mut monitor = match Monitor::with_config(cell, cfg) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    let end = SimTime::ZERO + SimDuration::from_secs_f64(duration_secs);
    let every = SimDuration::from_secs_f64(every_secs);
    let mut polls = 0u32;
    while monitor.now() < end {
        let remaining = SimDuration::from_nanos(end.as_nanos() - monitor.now().as_nanos());
        let slice = if every.as_nanos() < remaining.as_nanos() {
            every
        } else {
            remaining
        };
        monitor.run_for(slice);
        let snap = monitor.snapshot();
        let out = snap.render(format);
        match format {
            // One CSV header for the whole run: strip it off every poll
            // after the first so the stream stays machine-readable.
            ReportFormat::Csv if polls > 0 => {
                if let Some((_, rest)) = out.split_once('\n') {
                    print!("{rest}");
                }
            }
            ReportFormat::Csv => print!("{out}"),
            ReportFormat::Json => println!("{out}"),
            ReportFormat::Text => {
                if polls > 0 {
                    println!();
                }
                print!("{out}");
            }
        }
        polls += 1;
    }
}

fn cmd_probe(flags: &HashMap<String, String>) {
    let os = flags
        .get("os")
        .map(|o| os_by_name(o).unwrap_or_else(|| usage()))
        .unwrap_or(OsKind::Windows7);
    let machine = MachineTimer::new(os, 2013);
    println!("Granularity probe on {} (Figure 5):", os.name());
    for kind in [TimingApiKind::JavaDateGetTime, TimingApiKind::JavaNanoTime] {
        let mut api = make_api(kind, &machine);
        // Probe at several points of the regime timeline.
        let mut seen = Vec::new();
        for minute in [0u64, 5, 17, 43, 91] {
            if let Some(p) =
                probe_granularity(api.as_mut(), SimTime::from_secs(minute * 60), 10_000_000)
            {
                if !seen.iter().any(|s: &f64| (s - p.observed_ms).abs() < 1e-9) {
                    seen.push(p.observed_ms);
                }
            }
        }
        println!(
            "  {:<26} observed tick(s): {}",
            kind.to_string(),
            seen.iter()
                .map(|g| format!("{g:.6} ms"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}

fn cmd_ping() {
    let rtts = ping_baseline(10, SimDuration::from_millis(50), 1);
    let s = Summary::of(&rtts);
    for (i, r) in rtts.iter().enumerate() {
        println!("64 bytes from 192.168.1.10: icmp_seq={i} time={r:.3} ms");
    }
    println!(
        "\n--- 192.168.1.10 ping statistics ---\n{} packets, min/med/max = {:.3}/{:.3}/{:.3} ms",
        rtts.len(),
        s.min,
        s.median,
        s.max
    );
}

fn cmd_tput(flags: &HashMap<String, String>) {
    let method = flags
        .get("method")
        .map(|m| method_by_label(m).unwrap_or_else(|| usage()))
        .unwrap_or(MethodId::XhrGet);
    let size: usize = flags
        .get("size")
        .and_then(|s| s.parse().ok())
        .unwrap_or(128 * 1024);
    let format = parse_format(flags);
    let cell = ExperimentCell::paper(
        method,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    );
    let mut table = Table::new(
        format!("Throughput check: {} downloading {} bytes", method, size),
        &["round", "wire_mbps", "measured_mbps", "underestimated_pct"],
    );
    match run_bulk_rep(&cell, 0, size) {
        Ok(ms) => {
            for m in ms {
                table.row(vec![
                    Value::Int(m.round as i64),
                    Value::Num(m.wire_bps() / 1e6),
                    Value::Num(m.browser_bps() / 1e6),
                    Value::Num(m.underestimation() * 100.0),
                ]);
            }
        }
        Err(e) => {
            eprintln!("measurement failed: {e}");
            std::process::exit(1);
        }
    }
    emit(&table, format);
}

/// `bnm battery` — the full scored appraisal suite: every roster method
/// across the clean, impaired, contended, bufferbloat (drop-tail and
/// CoDel) and time-varying scenarios, ranked per scenario by the
/// measured deployment score.
fn cmd_battery(flags: &HashMap<String, String>) {
    let mut cfg = if flags.contains_key("quick") {
        bnm::BatteryConfig::quick()
    } else {
        bnm::BatteryConfig::default()
    };
    if let Some(reps) = flags.get("reps") {
        cfg.reps = reps.parse().unwrap_or_else(|_| usage());
        if cfg.reps == 0 {
            usage();
        }
    }
    if let Some(seed) = flags.get("seed") {
        cfg.seed = seed.parse().unwrap_or_else(|_| usage());
    }
    let format = parse_format(flags);
    let exec = if flags.contains_key("serial") {
        bnm::Executor::serial()
    } else {
        bnm::Executor::new()
    };
    match bnm::run_battery(&cfg, &exec) {
        Ok(report) => emit(&report, format),
        Err(e) => {
            eprintln!("battery failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_recommend(flags: &HashMap<String, String>) {
    let c = Constraints {
        mobile: flags.contains_key("mobile"),
        plugins_allowed: !flags.contains_key("no-plugins"),
        can_open_ports: !flags.contains_key("no-ports"),
        strict_cross_origin: flags.contains_key("strict-origin"),
    };
    let format = parse_format(flags);
    let mut table = Table::new(
        format!("§5 method recommendations under {c:?}"),
        &["rank", "method", "timing", "rationale"],
    );
    for (i, rec) in recommend::recommend_methods(&c).iter().enumerate() {
        table.row(vec![
            Value::Int((i + 1) as i64),
            Value::Text(rec.method.display_name().to_string()),
            Value::Text(rec.timing.to_string()),
            Value::Text(rec.rationale.to_string()),
        ]);
    }
    for (m, why) in recommend::discouraged() {
        table.note(format!("Discouraged: {} — {}", m.display_name(), why));
    }
    emit(&table, format);
}
