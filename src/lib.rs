//! # bnm — Browser-based Network Measurement appraisal
//!
//! Facade crate re-exporting the full public API of the IMC'13
//! reproduction *"Appraising the Delay Accuracy in Browser-based Network
//! Measurement"*.
//!
//! ```
//! // The subcrates are re-exported under short names:
//! use bnm::sim::SimTime;
//! assert_eq!(SimTime::from_millis(50).as_nanos(), 50_000_000);
//! ```

pub use bnm_browser as browser;
pub use bnm_core as core;
pub use bnm_http as http;
pub use bnm_methods as methods;
pub use bnm_sim as sim;
pub use bnm_stats as stats;
pub use bnm_tcp as tcp;
pub use bnm_time as timeapi;

// The working set for running experiments, at the top level: build cells
// with `CellBuilder`, run them (in parallel, deterministically) with
// `Executor` or `ExperimentRunner::try_run`, and handle `RunError`.
pub use bnm_core::exec::{self, Executor, Progress};
pub use bnm_core::{Appraisal, CellBuilder, CellResult, ExperimentCell, ExperimentRunner, RunError, RuntimeSel, Verdict};
