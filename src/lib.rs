//! # bnm — Browser-based Network Measurement appraisal
//!
//! Facade crate re-exporting the full public API of the IMC'13
//! reproduction *"Appraising the Delay Accuracy in Browser-based Network
//! Measurement"*.
//!
//! ```
//! // The subcrates are re-exported under short names:
//! use bnm::sim::SimTime;
//! assert_eq!(SimTime::from_millis(50).as_nanos(), 50_000_000);
//! ```
//!
//! For experiment-driving code, `use bnm::prelude::*` pulls in the
//! working set in one line.

#![deny(deprecated)]

pub use bnm_browser as browser;
pub use bnm_core as core;
pub use bnm_http as http;
pub use bnm_methods as methods;
pub use bnm_obs as obs;
pub use bnm_sim as sim;
pub use bnm_stats as stats;
pub use bnm_tcp as tcp;
pub use bnm_time as timeapi;

// The working set for running experiments, at the top level: build cells
// with `CellBuilder`, run them (in parallel, deterministically) with
// `Executor` or `ExperimentRunner::try_run`, and handle `RunError`.
pub use bnm_core::exec::{self, ExecStats, Executor, Progress};
pub use bnm_core::{
    run_battery, Appraisal, BatteryConfig, BatteryReport, BatteryScenario, CellBuilder, CellResult,
    ContentionSpec, ExperimentCell, ExperimentRunner, FaultSpec, Impairment, LinkDynamics,
    LinkReport, LinkShape, Monitor, MonitorConfig, MonitorFootprint, QueueDiscipline, RateSchedule,
    Render, ReportFormat, ReportSnapshot, RunError, RuntimeSel, StreamingSpec, Verdict,
};

/// The curated working set for driving experiments.
///
/// Everything a typical driver binary needs — cell construction, the
/// fallible run API, appraisal, tracing/attribution, and the id/enum
/// types those take — without the long per-crate paths:
///
/// ```
/// use bnm::prelude::*;
///
/// let cell = ExperimentCell::builder(
///     MethodId::WebSocket,
///     RuntimeSel::Browser(BrowserKind::Chrome),
///     OsKind::Ubuntu1204,
/// )
/// .reps(2)
/// .build()
/// .unwrap();
/// let result = ExperimentRunner::try_run(&cell).unwrap();
/// assert_eq!(result.d1.len(), 2);
/// ```
pub mod prelude {
    pub use bnm_browser::BrowserKind;
    pub use bnm_core::attribution::RoundAttribution;
    pub use bnm_core::exec::{ExecStats, Executor, Progress};
    pub use bnm_core::{
        run_battery, Appraisal, BatteryConfig, BatteryReport, BatteryScenario, CellBuilder,
        CellResult, ContentionSpec, ExperimentCell, ExperimentRunner, FaultSpec, Impairment,
        LinkDynamics, LinkReport, LinkShape, Monitor, MonitorConfig, MonitorFootprint,
        QueueDiscipline, RateSchedule, Render, RepOutcome, ReportFormat, ReportSnapshot,
        RoundMeasurement, RunError, RuntimeSel, Scenario, ScenarioBuilder, SessionSamples,
        SessionSpec, StreamingSpec, Testbed, TestbedBuilder, Verdict,
    };
    pub use bnm_methods::MethodId;
    pub use bnm_obs::{Component, Trace, TraceData};
    pub use bnm_time::{OsKind, TimingApiKind};
}
