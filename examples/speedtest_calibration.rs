//! What the overhead does to a speedtest (§2.2), and how much calibration
//! recovers: jitter fabricated by unstable Δd, and round-trip throughput
//! under-estimated by inflated RTTs.
//!
//! ```sh
//! cargo run --release --example speedtest_calibration
//! ```

#![deny(deprecated)]

use bnm::browser::BrowserKind;
use bnm::core::calibration::Calibration;
use bnm::core::impact::{JitterImpact, ThroughputImpact};
use bnm::core::{ExperimentCell, ExperimentRunner, RuntimeSel};
use bnm::methods::MethodId;
use bnm::stats::Summary;
use bnm::timeapi::OsKind;

fn main() {
    println!("Speedtest distortion and calibration (paper §2.2 / §5)\n");
    println!("Scenario: a speedtest page estimates RTT, jitter, and round-trip throughput");
    println!("(100 KB per round trip) — through two different methods.\n");

    for (method, browser) in [
        (MethodId::FlashGet, BrowserKind::Safari),
        (MethodId::WebSocket, BrowserKind::Firefox),
    ] {
        let cell = ExperimentCell::paper(method, RuntimeSel::Browser(browser), OsKind::Windows7)
            .with_reps(25);
        if !cell.is_runnable() {
            continue;
        }
        let r = ExperimentRunner::try_run(&cell).expect("cell checked runnable above");
        let wire: Vec<f64> = r.measurements.iter().map(|m| m.network_rtt_ms()).collect();
        let browser_rtt: Vec<f64> = r.measurements.iter().map(|m| m.browser_rtt_ms()).collect();

        let true_rtt = Summary::of(&wire).median;
        let meas_rtt = Summary::of(&browser_rtt).median;
        let jitter = JitterImpact::of(&wire, &browser_rtt);
        let tput = ThroughputImpact::of(100_000, true_rtt, meas_rtt);

        println!("=== {} in {} ===", method.display_name(), browser.name());
        println!("  RTT     : true {true_rtt:7.2} ms   measured {meas_rtt:7.2} ms");
        println!(
            "  jitter  : true {:7.2} ms   measured {:7.2} ms   (+{:.2} ms fabricated)",
            jitter.true_jitter_ms,
            jitter.measured_jitter_ms,
            jitter.inflation_ms()
        );
        println!(
            "  100KB throughput: true {:6.2} Mbit/s   measured {:6.2} Mbit/s   ({:.0}% under-estimated)",
            tput.true_bps / 1e6,
            tput.measured_bps / 1e6,
            tput.underestimation() * 100.0
        );

        // Calibrate with Δd2 and re-evaluate.
        let cal = Calibration::derive(&r);
        let corrected: Vec<f64> = browser_rtt.iter().map(|&x| cal.correct(x)).collect();
        let corr_rtt = Summary::of(&corrected).median;
        let corr_tput = ThroughputImpact::of(100_000, true_rtt, corr_rtt.max(0.1));
        println!(
            "  after calibration (offset {:.2} ms): RTT {corr_rtt:6.2} ms, throughput error {:.1}%, residual IQR {:.2} ms\n",
            cal.offset_ms,
            corr_tput.underestimation().abs() * 100.0,
            cal.residual_iqr_ms
        );
    }

    println!(
        "Reading: a stable method (WebSocket) barely needs calibration; an unstable one\n\
         (Flash HTTP) leaves a large residual even after subtracting its median overhead."
    );
}
