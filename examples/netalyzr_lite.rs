//! A Netalyzr-style diagnostic built on the appraisal library: pick the
//! best measurement method the "browser" supports, calibrate it, measure
//! RTT + jitter + throughput, and report with error bars — the workflow
//! the paper's findings imply a careful tool should follow.
//!
//! ```sh
//! cargo run --release --example netalyzr_lite            # desktop Firefox/Windows
//! cargo run --release --example netalyzr_lite -- mobile  # mobile WebKit
//! ```

#![deny(deprecated)]

use bnm::browser::BrowserKind;
use bnm::core::baseline::ping_baseline;
use bnm::core::calibration::Calibration;
use bnm::core::recommend::{recommend_methods, Constraints};
use bnm::core::throughput::run_bulk_rep;
use bnm::core::{ExperimentCell, ExperimentRunner, RuntimeSel};
use bnm::stats::{jitter, Summary};
use bnm::timeapi::OsKind;

fn main() {
    let mobile = std::env::args().nth(1).as_deref() == Some("mobile");
    let (runtime, os, label) = if mobile {
        (
            RuntimeSel::MobileWebKit,
            OsKind::Ubuntu1204,
            "mobile WebKit",
        )
    } else {
        (
            RuntimeSel::Browser(BrowserKind::Firefox),
            OsKind::Windows7,
            "Firefox / Windows 7",
        )
    };
    println!("netalyzr-lite: diagnosing connectivity from {label}\n");

    // 1. Pick the best method the platform supports (§5 rules).
    let constraints = Constraints {
        mobile,
        ..Constraints::default()
    };
    let rec = recommend_methods(&constraints)
        .into_iter()
        .find(|r| ExperimentCell::paper(r.method, runtime, os).is_runnable())
        .expect("some method is always available");
    println!(
        "method selection: {} with {}",
        rec.method.display_name(),
        rec.timing
    );
    println!("  rationale: {}\n", rec.rationale);

    // 2. Measure RTT with it, and calibrate using Δd2 (§5).
    let cell = ExperimentCell::paper(rec.method, runtime, os)
        .with_reps(20)
        .with_timing(rec.timing);
    let result = ExperimentRunner::try_run(&cell).expect("recommended method is runnable");
    let browser_rtts: Vec<f64> = result
        .measurements
        .iter()
        .filter(|m| m.round == 2)
        .map(|m| m.browser_rtt_ms())
        .collect();
    let cal = Calibration::derive(&result);
    let corrected: Vec<f64> = browser_rtts.iter().map(|&r| cal.correct(r)).collect();
    let raw = Summary::of(&browser_rtts);
    let fixed = Summary::of(&corrected);
    println!(
        "RTT (raw browser measurement) : median {:7.2} ms",
        raw.median
    );
    println!(
        "RTT (calibrated, −{:.2} ms)    : median {:7.2} ms ± residual IQR {:.2} ms",
        cal.offset_ms, fixed.median, cal.residual_iqr_ms
    );

    // Ground truth for the curious (a real tool would not have this!).
    let truth = Summary::of(&ping_baseline(
        10,
        bnm::sim::time::SimDuration::from_millis(50),
        7,
    ))
    .median;
    println!("RTT (ICMP ping ground truth)  : median {truth:7.2} ms");

    // 3. Jitter from the same samples.
    println!(
        "\njitter (consecutive-difference): {:.2} ms",
        jitter::consecutive_jitter(&browser_rtts)
    );

    // 4. Throughput with a 256 KB download, where the transport allows.
    if matches!(
        rec.method.transport(),
        bnm::browser::ProbeTransport::HttpGet | bnm::browser::ProbeTransport::WebSocketEcho
    ) {
        match run_bulk_rep(&cell, 0, 256 * 1024) {
            Ok(ms) => {
                let m = &ms[ms.len() - 1];
                println!(
                    "throughput (256 KB download)   : {:.2} Mbit/s measured ({:.2} on the wire, {:.1}% under)",
                    m.browser_bps() / 1e6,
                    m.wire_bps() / 1e6,
                    m.underestimation() * 100.0
                );
            }
            Err(e) => println!("throughput test failed: {e:?}"),
        }
    } else {
        println!("throughput: transport has no bulk path; skipping");
    }

    println!(
        "\nverdict: calibrated {} keeps RTT error within ±{:.2} ms of truth on this platform.",
        rec.method.display_name(),
        (fixed.median - truth).abs().max(cal.residual_iqr_ms)
    );
}
