//! Method shoot-out: appraise every measurement method on one
//! browser/OS, rank by accuracy, and print the paper's §5 advice.
//!
//! ```sh
//! cargo run --release --example method_shootout            # Firefox / Windows
//! cargo run --release --example method_shootout -- chrome ubuntu
//! ```

#![deny(deprecated)]

use bnm::core::recommend;
use bnm::prelude::*;

fn parse_args() -> (BrowserKind, OsKind) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let browser = match args.first().map(String::as_str) {
        Some("chrome") => BrowserKind::Chrome,
        Some("firefox") | None => BrowserKind::Firefox,
        Some("ie") => BrowserKind::Ie9,
        Some("opera") => BrowserKind::Opera,
        Some("safari") => BrowserKind::Safari,
        Some(other) => panic!("unknown browser {other}"),
    };
    let os = match args.get(1).map(String::as_str) {
        Some("ubuntu") => OsKind::Ubuntu1204,
        Some("windows") | None => OsKind::Windows7,
        Some(other) => panic!("unknown os {other}"),
    };
    (browser, os)
}

fn main() {
    let (browser, os) = parse_args();
    println!(
        "Appraising all methods in {} on {} (25 reps each)\n",
        browser.name(),
        os.name()
    );

    // One batch: the executor spreads every (method × rep) unit across
    // the machine's cores and reports unrunnable methods as errors.
    let cells: Vec<ExperimentCell> = MethodId::ALL
        .iter()
        .map(|&m| ExperimentCell::paper(m, RuntimeSel::Browser(browser), os).with_reps(25))
        .collect();
    let results = Executor::new().run(&cells);
    let mut scored: Vec<(MethodId, Appraisal)> = Vec::new();
    for (cell, result) in cells.iter().zip(results) {
        match result.and_then(|r| Appraisal::try_of(&r)) {
            Ok(a) => scored.push((cell.method, a)),
            Err(e) => println!("{:28} — {e}", cell.method.display_name()),
        }
    }

    // Rank: |median| + IQR as a crude accuracy score (trueness + precision).
    scored.sort_by(|a, b| {
        let score = |x: &Appraisal| x.pooled.median.abs() + x.pooled.iqr();
        score(&a.1).partial_cmp(&score(&b.1)).unwrap()
    });

    println!(
        "\n{:<28} {:>9} {:>9} {:>8}  verdict",
        "method", "Δd1 med", "Δd2 med", "IQR"
    );
    println!("{}", "-".repeat(72));
    for (method, a) in &scored {
        println!(
            "{:<28} {:>9.2} {:>9.2} {:>8.2}  {:?}",
            method.display_name(),
            a.d1.median,
            a.d2.median,
            a.pooled.iqr(),
            a.verdict
        );
    }

    println!("\n--- §5 practical considerations ---");
    for w in recommend::browser_warnings(browser) {
        println!("⚠  {w}");
    }
    let (api, why) = recommend::timing_advice(MethodId::JavaTcp);
    println!("Timing: use {api} for Java methods — {why}.");
    println!(
        "Preferred browser on {}: {}",
        os.name(),
        recommend::preferred_browser(os).name()
    );
    println!("\nTop recommendations under default constraints:");
    for rec in recommend::recommend_methods(&recommend::Constraints::default())
        .iter()
        .take(3)
    {
        println!(
            "  {:<24} with {:<24} — {}",
            rec.method.display_name(),
            rec.timing.to_string(),
            rec.rationale
        );
    }
}
