//! Dump a measurement session's capture to a Wireshark-readable `.pcap`.
//!
//! Runs one Opera Flash GET repetition (the Table 3 scenario — watch the
//! extra SYN/SYN-ACK of the measurement connection between the two probe
//! requests) and writes `opera_flash_get.pcap`.
//!
//! ```sh
//! cargo run --release --example pcap_dump
//! tshark -r opera_flash_get.pcap    # or open in Wireshark
//! ```

#![deny(deprecated)]

use bnm::browser::{BrowserKind, BrowserProfile};
use bnm::core::testbed::{Testbed, TestbedConfig};
use bnm::methods::MethodId;
use bnm::sim::pcap;
use bnm::sim::wire::{ParsedPacket, TcpFlags, Transport};
use bnm::timeapi::{MachineTimer, OsKind};

fn main() {
    let profile = BrowserProfile::build(BrowserKind::Opera, OsKind::Windows7).expect("available");
    let machine = MachineTimer::new(OsKind::Windows7, 2013);
    let mut tb = Testbed::build(
        &TestbedConfig::default(),
        MethodId::FlashGet.plan(None),
        profile,
        machine,
        0,
        2013,
    );
    tb.run();
    assert!(tb.session().result().completed, "session must finish");

    let capture = tb.engine.tap(tb.client_tap);
    let path = std::path::Path::new("opera_flash_get.pcap");
    pcap::write_file(capture, path).expect("write pcap");
    println!(
        "Wrote {} frames to {} ({} bytes)",
        capture.len(),
        path.display(),
        std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
    );

    // A tcpdump-style summary of the trace.
    println!("\ntcpdump-style view (client side):");
    let mut syns = 0;
    for rec in capture.records() {
        let Ok(p) = ParsedPacket::parse(&rec.frame) else {
            continue;
        };
        if let Transport::Tcp(seg) = &p.transport {
            let dir = match rec.dir {
                bnm::sim::capture::CaptureDir::Tx => ">",
                bnm::sim::capture::CaptureDir::Rx => "<",
            };
            if seg.flags.contains(TcpFlags::SYN) && !seg.flags.contains(TcpFlags::ACK) {
                syns += 1;
            }
            let snippet = String::from_utf8_lossy(&seg.payload)
                .chars()
                .take(38)
                .collect::<String>()
                .replace(['\r', '\n'], "·");
            println!(
                "{:>12.6}s {dir} {}:{} → {}:{} [{}] len {}  {}",
                rec.ts.as_secs_f64(),
                p.ip.src,
                seg.src_port,
                p.ip.dst,
                seg.dst_port,
                seg.flags,
                seg.payload.len(),
                snippet
            );
        }
    }
    println!(
        "\n{} client SYNs in the trace — the container connection plus the fresh\n\
         measurement connection Opera's Flash stack opened (Table 3's mechanism).",
        syns
    );
}
