//! Quickstart: appraise one browser-based RTT measurement method.
//!
//! Builds the paper's testbed (client ↔ switch ↔ server, 100 Mbps, 50 ms
//! server-side delay), runs the WebSocket method in Chrome/Ubuntu for 20
//! repetitions, and prints the delay-overhead appraisal.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

#![deny(deprecated)]

use bnm::prelude::*;

fn main() {
    // 1. Describe the experiment cell: which method, which runtime. The
    //    builder validates against Table 2 at build() time.
    let cell = ExperimentCell::builder(
        MethodId::WebSocket,
        RuntimeSel::Browser(BrowserKind::Chrome),
        OsKind::Ubuntu1204,
    )
    .reps(20)
    .build()
    .expect("WebSocket runs in Chrome on Ubuntu");

    println!("Running {} …", cell.label());

    // 2. Run it: every repetition is a fresh deterministic simulation
    //    (scheduled across all cores, merged bit-identically to a serial
    //    run); ground truth comes from parsing the simulated WinDump
    //    capture.
    let result = ExperimentRunner::try_run(&cell).expect("cell is runnable");

    // 3. Appraise: Δd = (tB_r − tB_s) − (tN_r − tN_s), Eq. 1 of the paper.
    let appraisal = Appraisal::try_of(&result).expect("cell produced samples");
    println!("\nΔd1 (first measurement, object instantiation included):");
    println!(
        "  median {:.3} ms, IQR [{:.3}, {:.3}], whiskers [{:.3}, {:.3}], {} outliers",
        appraisal.d1.median,
        appraisal.d1.q1,
        appraisal.d1.q3,
        appraisal.d1.whisker_lo,
        appraisal.d1.whisker_hi,
        appraisal.d1.outliers.len()
    );
    println!("\nΔd2 (object reused):");
    println!(
        "  median {:.3} ms, IQR [{:.3}, {:.3}]",
        appraisal.d2.median, appraisal.d2.q1, appraisal.d2.q3
    );
    println!(
        "\nPooled mean ± 95% CI: {} ms   →  verdict: {:?}",
        appraisal.mean_ci.format_table4(),
        appraisal.verdict
    );
    println!(
        "\n(The paper's §4: WebSocket is the most accurate and consistent native method —\n\
         median overhead below a millisecond.)"
    );
}
