//! The paper's Figure 5 experiment as a standalone tool: probe the
//! timestamp granularity of each timing API on both OSes, then watch the
//! Windows granularity flip between regimes over simulated hours.
//!
//! ```sh
//! cargo run --release --example granularity_probe
//! ```

#![deny(deprecated)]

use bnm::sim::time::{SimDuration, SimTime};
use bnm::timeapi::{
    make_api, probe::probe_series, probe_granularity, MachineTimer, OsKind, TimingApiKind,
};

fn main() {
    println!("Timestamp-granularity probe (the paper's Figure 5 loop)\n");

    for os in [OsKind::Windows7, OsKind::Ubuntu1204] {
        let machine = MachineTimer::new(os, 2013);
        println!("--- {} ---", os.name());
        for kind in [
            TimingApiKind::JsDateGetTime,
            TimingApiKind::FlashGetTime,
            TimingApiKind::JavaDateGetTime,
            TimingApiKind::JavaNanoTime,
            TimingApiKind::PerformanceNow,
        ] {
            let mut api = make_api(kind, &machine);
            // Probe at a few spots along the timeline: Windows Java may
            // answer differently depending on the regime in force.
            let mut seen: Vec<f64> = Vec::new();
            for minutes in [0u64, 7, 31, 63, 127] {
                let start = SimTime::from_secs(minutes * 60);
                if let Some(p) = probe_granularity(api.as_mut(), start, 10_000_000) {
                    if !seen.iter().any(|s| (s - p.observed_ms).abs() < 1e-9) {
                        seen.push(p.observed_ms);
                    }
                }
            }
            let cells: Vec<String> = seen.iter().map(|g| format!("{g:.6} ms")).collect();
            println!(
                "  {:<26} granularities observed: {}",
                kind.to_string(),
                cells.join(", ")
            );
        }
        println!();
    }

    println!("Windows regime timeline (Java Date.getTime, one probe per 30 s, 2 h):");
    let machine = MachineTimer::new(OsKind::Windows7, 2013);
    let mut api = make_api(TimingApiKind::JavaDateGetTime, &machine);
    let series = probe_series(api.as_mut(), SimTime::ZERO, SimDuration::from_secs(30), 240);
    for (hour, chunk) in series.chunks(120).enumerate() {
        let line: String = chunk
            .iter()
            .map(|(_, g)| if *g > 2.0 { 'C' } else { '.' })
            .collect();
        println!("  hour {}: {line}", hour + 1);
    }
    println!("  legend: '.' = 1 ms tick, 'C' = ~15.625 ms tick");
    println!(
        "\nThis non-constant granularity is why Date.getTime() under-estimates RTTs on\n\
         Windows (§4.2) — and why the paper recommends System.nanoTime()."
    );
}
