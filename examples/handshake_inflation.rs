//! Table 3's mechanism, end to end: Opera's Flash methods open fresh TCP
//! connections for measurement requests, so a full handshake lands inside
//! the "RTT" — and calibration with Δd2 can (or cannot) repair it.
//!
//! ```sh
//! cargo run --release --example handshake_inflation
//! ```

#![deny(deprecated)]

use bnm::browser::BrowserKind;
use bnm::core::calibration::Calibration;
use bnm::core::{ExperimentCell, ExperimentRunner, RuntimeSel};
use bnm::methods::MethodId;
use bnm::stats::Summary;
use bnm::timeapi::OsKind;

fn median(v: &[f64]) -> f64 {
    Summary::of(v).median
}

fn run(method: MethodId, browser: BrowserKind) -> bnm::core::CellResult {
    let cell =
        ExperimentCell::paper(method, RuntimeSel::Browser(browser), OsKind::Windows7).with_reps(25);
    ExperimentRunner::try_run(&cell).expect("Flash cells run on Windows")
}

fn main() {
    println!("TCP-handshake inflation in Flash HTTP measurement (paper §4.1 / Table 3)\n");

    let opera_get = run(MethodId::FlashGet, BrowserKind::Opera);
    let opera_post = run(MethodId::FlashPost, BrowserKind::Opera);
    let chrome_get = run(MethodId::FlashGet, BrowserKind::Chrome);

    println!("{:<26} {:>10} {:>10}", "", "Δd1 med", "Δd2 med");
    for (name, r) in [
        ("Opera Flash GET", &opera_get),
        ("Opera Flash POST", &opera_post),
        ("Chrome Flash GET", &chrome_get),
    ] {
        println!(
            "{:<26} {:>10.1} {:>10.1}",
            name,
            median(&r.d1),
            median(&r.d2)
        );
    }

    let new_conns_d1 = opera_get
        .measurements
        .iter()
        .filter(|m| m.round == 1 && m.browser.opened_new_connection)
        .count();
    println!(
        "\nOpera opened a fresh connection in {}/{} first rounds (Chrome: 0) —\n\
         the ~50 ms gap between Opera's Δd1 and Δd2 is one TCP handshake through the\n\
         delayed server link, plus the Flash object's instantiation cost.",
        new_conns_d1,
        opera_get.d1.len()
    );
    println!(
        "POST never reuses: Δd2(POST) − Δd2(GET) = {:.1} ms ≈ the 50 ms simulated delay.",
        median(&opera_post.d2) - median(&opera_get.d2)
    );

    println!("\n--- Calibration (§5) ---");
    for (name, r) in [
        ("Opera Flash GET", &opera_get),
        ("Chrome Flash GET", &chrome_get),
    ] {
        let cal = Calibration::derive(r);
        println!(
            "{name}: offset {:.1} ms, residual IQR {:.1} ms, 95% span {:.1} ms → trustworthy to ±2 ms: {}",
            cal.offset_ms,
            cal.residual_iqr_ms,
            cal.residual_p95_span_ms,
            cal.is_trustworthy(2.0)
        );
    }
    println!(
        "\nEven calibrated, Flash HTTP stays shaky — \"the Flash GET and POST methods are\n\
         not so suitable for the purpose of measurement\" (§5)."
    );
}
