#!/usr/bin/env bash
# Regression gate for the machine-readable bench reports.
#
#   scripts/bench_compare.sh            # compare working-tree BENCH_*.json
#                                       # against the committed baselines
#
# Fails (exit 1) when the fresh numbers regress by more than the
# tolerance (default 20%, override with BNM_BENCH_TOLERANCE_PCT) against
# the baselines committed at HEAD:
#
#   BENCH_engine.json    wheel events/sec must not drop, peak RSS must
#                        not grow
#   BENCH_pipeline.json  streaming seconds and streaming peak RSS must
#                        not grow
#   BENCH_serve.json     monitor rounds/sec must not drop, snapshot
#                        latency must not grow
#   BENCH_webrtc.json    datagram reps/sec must not drop, peak RSS must
#                        not grow
#   BENCH_battery.json   scored entries/sec must not drop, peak RSS
#                        must not grow
#
# A report missing from HEAD is skipped with a note (first commit of a
# new bench has no baseline yet); a report missing from the working tree
# is an error (run `scripts/check.sh --bench` first).
set -euo pipefail
cd "$(dirname "$0")/.."

tol="${BNM_BENCH_TOLERANCE_PCT:-20}"
fail=0

# json_num FILE KEY NTH — the NTH numeric value of "KEY": N in FILE
# (files are flat enough that position disambiguates the section:
# streaming comes before batch, wheel before heap).
json_num() {
  grep -o "\"$2\": *[0-9.]*" "$1" | sed -n "$3{s/.*: *//;p}"
}

baseline_of() {
  git show "HEAD:$1" 2>/dev/null
}

# check LABEL BASE FRESH DIRECTION — DIRECTION is 'min' (fresh must not
# drop below BASE by more than tol%) or 'max' (must not exceed).
check() {
  local label="$1" base="$2" fresh="$3" dir="$4"
  if [[ -z "$base" || -z "$fresh" ]]; then
    echo "!! $label: missing value (base='$base' fresh='$fresh')" >&2
    fail=1
    return
  fi
  local ok
  if [[ "$dir" == min ]]; then
    ok=$(awk -v b="$base" -v f="$fresh" -v t="$tol" \
      'BEGIN { print (f >= b * (1 - t / 100)) ? 1 : 0 }')
  else
    ok=$(awk -v b="$base" -v f="$fresh" -v t="$tol" \
      'BEGIN { print (f <= b * (1 + t / 100)) ? 1 : 0 }')
  fi
  if [[ "$ok" == 1 ]]; then
    printf '   %-40s %12s -> %-12s ok\n' "$label" "$base" "$fresh"
  else
    printf '!! %-40s %12s -> %-12s REGRESSION (>%s%%)\n' \
      "$label" "$base" "$fresh" "$tol" >&2
    fail=1
  fi
}

compare_engine() {
  local file=BENCH_engine.json
  if [[ ! -f $file ]]; then
    echo "!! $file not in working tree; run scripts/check.sh --bench" >&2
    fail=1
    return
  fi
  local base
  if ! base=$(baseline_of $file); then
    echo "-- $file: no committed baseline, skipping"
    return
  fi
  local tmp
  tmp=$(mktemp)
  printf '%s\n' "$base" >"$tmp"
  check "engine: wheel events/sec" \
    "$(json_num "$tmp" events_per_sec 1)" "$(json_num $file events_per_sec 1)" min
  check "engine: peak RSS KiB" \
    "$(json_num "$tmp" peak_rss_kib 1)" "$(json_num $file peak_rss_kib 1)" max
  rm -f "$tmp"
}

compare_pipeline() {
  local file=BENCH_pipeline.json
  if [[ ! -f $file ]]; then
    echo "!! $file not in working tree; run scripts/check.sh --bench" >&2
    fail=1
    return
  fi
  local base
  if ! base=$(baseline_of $file); then
    echo "-- $file: no committed baseline, skipping"
    return
  fi
  local tmp
  tmp=$(mktemp)
  printf '%s\n' "$base" >"$tmp"
  # First occurrences are the streaming section.
  check "pipeline: streaming seconds" \
    "$(json_num "$tmp" seconds 1)" "$(json_num $file seconds 1)" max
  check "pipeline: streaming peak RSS KiB" \
    "$(json_num "$tmp" peak_rss_kib 1)" "$(json_num $file peak_rss_kib 1)" max
  rm -f "$tmp"
}

compare_serve() {
  local file=BENCH_serve.json
  if [[ ! -f $file ]]; then
    echo "!! $file not in working tree; run scripts/check.sh --bench" >&2
    fail=1
    return
  fi
  local base
  if ! base=$(baseline_of $file); then
    echo "-- $file: no committed baseline, skipping"
    return
  fi
  local tmp
  tmp=$(mktemp)
  printf '%s\n' "$base" >"$tmp"
  check "serve: monitor rounds/sec" \
    "$(json_num "$tmp" rounds_per_sec 1)" "$(json_num $file rounds_per_sec 1)" min
  check "serve: snapshot ms" \
    "$(json_num "$tmp" snapshot_ms 1)" "$(json_num $file snapshot_ms 1)" max
  rm -f "$tmp"
}

compare_webrtc() {
  local file=BENCH_webrtc.json
  if [[ ! -f $file ]]; then
    echo "!! $file not in working tree; run scripts/check.sh --bench" >&2
    fail=1
    return
  fi
  local base
  if ! base=$(baseline_of $file); then
    echo "-- $file: no committed baseline, skipping"
    return
  fi
  local tmp
  tmp=$(mktemp)
  printf '%s\n' "$base" >"$tmp"
  check "webrtc: datagram reps/sec" \
    "$(json_num "$tmp" reps_per_sec 1)" "$(json_num $file reps_per_sec 1)" min
  check "webrtc: peak RSS KiB" \
    "$(json_num "$tmp" peak_rss_kib 1)" "$(json_num $file peak_rss_kib 1)" max
  rm -f "$tmp"
}

compare_battery() {
  local file=BENCH_battery.json
  if [[ ! -f $file ]]; then
    echo "!! $file not in working tree; run scripts/check.sh --bench" >&2
    fail=1
    return
  fi
  local base
  if ! base=$(baseline_of $file); then
    echo "-- $file: no committed baseline, skipping"
    return
  fi
  local tmp
  tmp=$(mktemp)
  printf '%s\n' "$base" >"$tmp"
  check "battery: scored entries/sec" \
    "$(json_num "$tmp" entries_per_sec 1)" "$(json_num $file entries_per_sec 1)" min
  check "battery: peak RSS KiB" \
    "$(json_num "$tmp" peak_rss_kib 1)" "$(json_num $file peak_rss_kib 1)" max
  rm -f "$tmp"
}

echo "bench regression gate (tolerance ${tol}%)"
compare_engine
compare_pipeline
compare_serve
compare_webrtc
compare_battery

if [[ $fail -ne 0 ]]; then
  echo "bench_compare: REGRESSION detected" >&2
  exit 1
fi
echo "bench_compare: OK"
