#!/usr/bin/env bash
# Repo health gate: the tier-1 acceptance commands plus lint and docs.
#
#   scripts/check.sh            # build + test + parity + clippy + docs
#   scripts/check.sh --fast     # skip the release build (debug test run only)
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

if [[ $fast -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

# The tracing layer's tier-1 guarantees, run explicitly so a filtered or
# partial test invocation can't silently skip them: parallel traces must
# be byte-identical to serial, and attribution must close the Δd budget.
echo "==> cargo test -q --test trace_parity"
cargo test -q --test trace_parity

# The impairment subsystem's guarantees: fault rates compose, lossy
# cells exclude retransmitted rounds without breaking the attribution
# closure, and impaired cells stay bit-identical across schedulers.
echo "==> cargo test -q --test impairment"
cargo test -q --test impairment

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "OK"
