#!/usr/bin/env bash
# Repo health gate: the tier-1 acceptance commands plus lint.
#
#   scripts/check.sh            # build + test + clippy
#   scripts/check.sh --fast     # skip the release build (debug test run only)
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

if [[ $fast -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "OK"
