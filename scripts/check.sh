#!/usr/bin/env bash
# Repo health gate: the tier-1 acceptance commands plus lint and docs.
#
#   scripts/check.sh            # fmt + build + test + parity + clippy + docs + smoke
#   scripts/check.sh --fast     # skip the release build (debug test run only)
#   scripts/check.sh --quick    # skip the bench-sweep smoke steps
#   scripts/check.sh --bench    # also run the engine bench (quick mode),
#                               # writing machine-readable BENCH_engine.json
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
quick=0
bench=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    --quick) quick=1 ;;
    --bench) bench=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if [[ $fast -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

# The tracing layer's tier-1 guarantees, run explicitly so a filtered or
# partial test invocation can't silently skip them: parallel traces must
# be byte-identical to serial, and attribution must close the Δd budget.
echo "==> cargo test -q --test trace_parity"
cargo test -q --test trace_parity

# The impairment subsystem's guarantees: fault rates compose, lossy
# cells exclude retransmitted rounds without breaking the attribution
# closure, and impaired cells stay bit-identical across schedulers.
echo "==> cargo test -q --test impairment"
cargo test -q --test impairment

# The multi-client scenario layer's guarantees: the N = 1 scenario is
# byte-identical to the legacy testbed path, per-session results are
# keyed by id (not insertion order), and contended cells keep the
# executor's serial/parallel bit parity.
echo "==> cargo test -q --test scenario_parity"
cargo test -q --test scenario_parity

# The streaming post-processing pipeline's guarantees: streaming
# capture consumption and parallel per-session matching are both
# bit-identical to the batch/serial paths, bounded retention sketches
# stay within their error bound, and the frame pool's high-water mark
# stays flat per client.
echo "==> cargo test -q --test streaming_parity"
cargo test -q --test streaming_parity

# The continuous-monitoring layer's guarantees: windowed sketch
# quantiles agree with exact batch quantiles within the documented
# bound, windows rotate exactly at pan boundaries, snapshots are
# scheduling-independent, and a 1,000-round run's footprint stays flat.
echo "==> cargo test -q --test monitor_parity"
cargo test -q --test monitor_parity

# The datagram (WebRTC) method's guarantees: per-probe verdicts match
# the wire-truth capture counts exactly, measured loss tracks the
# injected rate instead of excluding rounds, attribution closes the Δd
# budget on delivered probes, and datagram cells keep the executor's
# serial/parallel bit parity.
echo "==> cargo test -q --test webrtc_parity"
cargo test -q --test webrtc_parity

# The link-dynamics layer's guarantees: an all-static shape stays
# bit-identical to the fixed-rate path, the bufferbloat scenario pair
# shows the Δd inflation the AQM variant relieves, CoDel bounds the
# engine-level standing queue, and shaped cells plus the whole scored
# battery keep the executor's serial/parallel bit parity.
echo "==> cargo test -q --test dynamics_parity"
cargo test -q --test dynamics_parity

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

# Bench-sweep smoke: one tiny contention sweep end to end (run, CSV
# rows). `--quick` skips it, and `--fast` implies it (no release binary
# to run).
if [[ $quick -eq 0 && $fast -eq 0 ]]; then
  echo "==> bench smoke: contend (2 reps, capped at 4 clients)"
  smoke_csv=$(./target/release/bnm contend --clients 4 --reps 2 --format csv)
  rows=$(printf '%s\n' "$smoke_csv" | wc -l)
  if [[ $rows -lt 4 ]]; then
    echo "contend smoke produced $rows rows, expected >= 4" >&2
    exit 1
  fi

  # Serve smoke: a 2 s virtual-time monitored run polled once, with the
  # snapshot JSON spot-checked for the schema's required keys.
  echo "==> serve smoke: 2s monitored run, one JSON snapshot"
  serve_json=$(./target/release/bnm serve --duration 2 --every 2 --format json)
  for key in '"label"' '"windows"' '"p50"' '"rounds"'; do
    if ! printf '%s' "$serve_json" | grep -q "$key"; then
      echo "serve snapshot JSON missing key $key" >&2
      exit 1
    fi
  done

  # Battery smoke: the scored suite at quick depth, with the report JSON
  # spot-checked for the schema's required keys and every scenario
  # family present.
  echo "==> battery smoke: quick scored suite, JSON report"
  battery_json=$(./target/release/bnm battery --quick --format json)
  for key in '"battery"' '"scenarios"' '"verdict"' '"score"' '"bufferbloat"' '"bufferbloat-aqm"' '"time-varying"'; do
    if ! printf '%s' "$battery_json" | grep -q "$key"; then
      echo "battery report JSON missing key $key" >&2
      exit 1
    fi
  done
fi

# Benchmarks, quick mode: one timed crowd run per configuration —
# engine (wheel+pool vs the reference BinaryHeap) and the streaming
# post-processing pipeline (streaming vs batch at the 1,000-client
# impaired tier) — written to BENCH_engine.json / BENCH_pipeline.json
# at the repo root, then gated against the committed baselines.
if [[ $bench -eq 1 ]]; then
  echo "==> engine bench (quick mode) -> BENCH_engine.json"
  BNM_BENCH_QUICK=1 BNM_BENCH_OUT="$PWD/BENCH_engine.json" \
    cargo bench -p bnm-bench --bench engine
  echo "==> pipeline bench (quick mode) -> BENCH_pipeline.json"
  BNM_BENCH_QUICK=1 BNM_BENCH_PIPELINE_OUT="$PWD/BENCH_pipeline.json" \
    cargo bench -p bnm-bench --bench pipeline
  echo "==> serve bench (quick mode) -> BENCH_serve.json"
  BNM_BENCH_QUICK=1 BNM_BENCH_SERVE_OUT="$PWD/BENCH_serve.json" \
    cargo bench -p bnm-bench --bench serve
  echo "==> webrtc bench (quick mode) -> BENCH_webrtc.json"
  BNM_BENCH_QUICK=1 BNM_BENCH_WEBRTC_OUT="$PWD/BENCH_webrtc.json" \
    cargo bench -p bnm-bench --bench webrtc
  echo "==> battery bench (quick mode) -> BENCH_battery.json"
  BNM_BENCH_QUICK=1 BNM_BENCH_BATTERY_OUT="$PWD/BENCH_battery.json" \
    cargo bench -p bnm-bench --bench battery
  echo "==> bench regression gate"
  scripts/bench_compare.sh
fi

echo "OK"
